"""Tests for bucket combinations, the combination space and bound estimation."""

import itertools

import pytest

from repro.core import collect_statistics
from repro.core.bounds import BoundsEstimator, BucketCombination, CombinationSpace
from repro.experiments import build_query
from repro.solver import BranchAndBoundSolver
from repro.temporal import Interval, IntervalCollection, PredicateParams

P1 = PredicateParams.of(4, 16, 0, 10)


@pytest.fixture()
def small_setup():
    """Two tiny collections, statistics with 3 granules, and a meets query."""
    c1 = IntervalCollection(
        "c1", [Interval(0, 0, 8), Interval(1, 5, 20), Interval(2, 22, 29), Interval(3, 25, 28)]
    )
    c2 = IntervalCollection(
        "c2", [Interval(0, 8, 12), Interval(1, 20, 25), Interval(2, 27, 30), Interval(3, 2, 4)]
    )
    query = build_query("Qs,m", [c1, c2, c1], P1, k=3)
    statistics = collect_statistics({"c1": c1, "c2": c2}, num_granules=3)
    return query, statistics


class TestBucketCombination:
    def test_accessors(self):
        combo = BucketCombination(("x1", "x2"), ((0, 1), (1, 2)), nb_res=12)
        assert combo.bucket_of("x2") == (1, 2)
        assert combo.bucket_items() == [("x1", (0, 1)), ("x2", (1, 2))]
        assert combo.key() == (("x1", (0, 1)), ("x2", (1, 2)))

    def test_with_bounds(self):
        combo = BucketCombination(("x1",), ((0, 0),), nb_res=1)
        updated = combo.with_bounds(0.2, 0.8, [(0.2, 0.8)])
        assert updated.lower_bound == 0.2
        assert updated.upper_bound == 0.8
        assert updated.edge_bounds == ((0.2, 0.8),)
        # Original is unchanged (immutability).
        assert combo.upper_bound == 1.0


class TestCombinationSpace:
    def test_enumerate_size(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        combos = list(space.enumerate())
        expected = 1
        for vertex in query.vertices:
            expected *= len(space.buckets_of(vertex))
        assert len(combos) == expected == space.size()

    def test_nb_res_is_product_of_counts(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        for combo in space.enumerate():
            expected = 1
            for vertex, bucket in combo.bucket_items():
                expected *= space.count(vertex, bucket)
            assert combo.nb_res == expected
            assert combo.nb_res > 0

    def test_total_results_cover_cross_product(self, small_setup):
        """Summing nb_res over all combinations covers the full cross product."""
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        total = sum(c.nb_res for c in space.enumerate())
        expected = 1
        for vertex in query.vertices:
            expected *= len(query.collections[vertex])
        assert total == expected

    def test_domain_set_matches_buckets(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        combo = next(space.enumerate())
        domains = space.domain_set(combo)
        for vertex, bucket in combo.bucket_items():
            assert domains.box_of(vertex) == space.box(vertex, bucket)


class TestBoundsEstimator:
    def test_loose_bounds_bracket_actual_scores(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space)
        for combo in space.enumerate():
            bounded = estimator.loose_bounds(combo)
            assert 0.0 <= bounded.lower_bound <= bounded.upper_bound <= 1.0
            # Every concrete tuple of this combination scores within the bounds.
            pools = []
            for vertex, bucket in bounded.bucket_items():
                matrix = statistics.matrix(query.collections[vertex].name)
                members = [
                    x
                    for x in query.collections[vertex]
                    if matrix.granularity.bucket_of(x) == bucket
                ]
                pools.append(members)
            for tuple_ in itertools.product(*pools):
                score = query.score_assignment(dict(zip(query.vertices, tuple_)))
                assert bounded.lower_bound - 1e-9 <= score <= bounded.upper_bound + 1e-9

    def test_tight_bounds_never_looser_than_loose(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space, solver=BranchAndBoundSolver(max_nodes=128))
        for combo in space.enumerate():
            loose = estimator.loose_bounds(combo)
            tight = estimator.tight_bounds(combo)
            assert tight.upper_bound <= loose.upper_bound + 1e-9
            assert tight.lower_bound >= loose.lower_bound - 1e-9

    def test_pairwise_cache_reuse(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space)
        combos = list(space.enumerate())
        for combo in combos:
            estimator.loose_bounds(combo)
        first_count = estimator.pairwise.pairs_computed
        for combo in combos:
            estimator.loose_bounds(combo)
        assert estimator.pairwise.pairs_computed == first_count

    def test_precompute_all_pairs_counts(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space)
        computed = estimator.pairwise.precompute_all_pairs()
        expected = 0
        for edge in query.edges:
            expected += len(space.buckets_of(edge.source)) * len(space.buckets_of(edge.target))
        assert computed == expected

    def test_edge_bounds_align_with_query_edges(self, small_setup):
        query, statistics = small_setup
        space = CombinationSpace(query, statistics)
        estimator = BoundsEstimator(query, space)
        combo = estimator.loose_bounds(next(space.enumerate()))
        assert len(combo.edge_bounds) == query.num_edges
