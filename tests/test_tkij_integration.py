"""End-to-end integration tests: TKIJ against the naive oracle."""

import pytest

from repro import TKIJ, ClusterConfig, LocalJoinConfig
from repro.baselines import naive_top_k
from repro.experiments import PARAMETERS, build_query
from repro.solver import BranchAndBoundSolver


def run_tkij(query, **kwargs):
    defaults = dict(
        num_granules=4,
        strategy="loose",
        assigner="dtb",
        cluster=ClusterConfig(num_reducers=4, num_mappers=2),
    )
    defaults.update(kwargs)
    return TKIJ(**defaults).execute(query)


def assert_matches_naive(result, query):
    expected = naive_top_k(query)
    got_scores = [round(r.score, 9) for r in result.results]
    expected_scores = [round(r.score, 9) for r in expected]
    assert got_scores == expected_scores


class TestCorrectnessAcrossQueries:
    @pytest.mark.parametrize(
        "query_name",
        ["Qb,b", "Qo,o", "Qf,f", "Qs,s", "Qs,m", "Qo,m", "Qf,b", "Qs,f,m", "QjB,jB", "QsM,sM"],
    )
    def test_all_table1_queries(self, tiny_collections, query_name):
        query = build_query(query_name, tiny_collections, "P1", k=10)
        result = run_tkij(query)
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("params_name", ["P1", "P2", "P3", "PB"])
    def test_all_parameter_sets(self, tiny_collections, params_name):
        query = build_query("Qo,m", tiny_collections, params_name, k=8)
        result = run_tkij(query)
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("strategy", ["loose", "two-phase", "brute-force"])
    def test_all_strategies(self, tiny_collections, strategy):
        query = build_query("Qs,m", tiny_collections, "P1", k=8)
        result = run_tkij(query, strategy=strategy, solver=BranchAndBoundSolver(max_nodes=32))
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("assigner", ["dtb", "lpt", "round-robin"])
    def test_all_assigners(self, tiny_collections, assigner):
        query = build_query("Qo,o", tiny_collections, "P1", k=8)
        result = run_tkij(query, assigner=assigner)
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("k", [1, 5, 40])
    def test_various_k(self, tiny_collections, k):
        query = build_query("Qf,b", tiny_collections, "P1", k=k)
        result = run_tkij(query)
        assert_matches_naive(result, query)
        assert len(result.results) == k

    def test_binary_query(self, pair_collections):
        from repro.query import QueryBuilder

        query = (
            QueryBuilder(name="meets2", params=PARAMETERS["P1"])
            .add_collection("x", pair_collections[0])
            .add_collection("y", pair_collections[1])
            .add_predicate("x", "y", "meets")
            .top(12)
            .build()
        )
        result = run_tkij(query, num_granules=6)
        assert_matches_naive(result, query)

    def test_star_query_four_vertices(self, tiny_collections):
        from repro.experiments import star_spec

        spec = star_spec("Qb*", 4)
        collections = tiny_collections + [tiny_collections[0]]
        query = spec.build(collections, PARAMETERS["P1"], k=6)
        result = run_tkij(query, num_granules=3)
        assert_matches_naive(result, query)

    def test_cycle_query(self, tiny_collections):
        query = build_query("Qs,f,m", tiny_collections, "P1", k=6)
        result = run_tkij(query, num_granules=3)
        assert_matches_naive(result, query)

    def test_disabled_optimizations_still_exact(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=10)
        result = run_tkij(
            query, join_config=LocalJoinConfig(use_index=False, early_termination=False)
        )
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("num_granules", [1, 2, 8, 16])
    def test_granularity_does_not_affect_results(self, tiny_collections, num_granules):
        query = build_query("Qs,m", tiny_collections, "P1", k=10)
        result = run_tkij(query, num_granules=num_granules)
        assert_matches_naive(result, query)

    @pytest.mark.parametrize("num_reducers", [1, 3, 16])
    def test_reducer_count_does_not_affect_results(self, tiny_collections, num_reducers):
        query = build_query("Qo,o", tiny_collections, "P1", k=10)
        result = run_tkij(query, cluster=ClusterConfig(num_reducers=num_reducers, num_mappers=2))
        assert_matches_naive(result, query)


class TestExecutionReport:
    def test_report_structure(self, qsm_query):
        result = run_tkij(qsm_query)
        assert set(result.phase_seconds) == {
            "statistics",
            "top_buckets",
            "distribution",
            "join",
            "merge",
        }
        assert result.total_seconds > 0
        assert result.top_buckets.selected_count > 0
        assert result.join_metrics.shuffle_records > 0
        summary = result.describe()
        assert "seconds_total" in summary
        assert "pruned_results_fraction" in summary
        assert "min_kth_score" in summary

    def test_statistics_reuse(self, qsm_query):
        tkij = TKIJ(num_granules=4, cluster=ClusterConfig(num_reducers=4))
        collections = {
            qsm_query.collections[v].name: qsm_query.collections[v] for v in qsm_query.vertices
        }
        statistics = tkij.collect_statistics(collections)
        first = tkij.execute(qsm_query, statistics=statistics)
        second = tkij.execute(qsm_query, statistics=statistics)
        assert [r.score for r in first.results] == [r.score for r in second.results]

    def test_statistics_via_mapreduce(self, qsm_query):
        tkij = TKIJ(
            num_granules=4,
            cluster=ClusterConfig(num_reducers=4),
            statistics_on_mapreduce=True,
        )
        result = tkij.execute(qsm_query)
        assert_matches_naive(result, qsm_query)

    def test_per_reducer_kth_scores(self, qbb_query):
        result = run_tkij(qbb_query)
        assert result.per_reducer_kth_score
        assert 0.0 <= result.min_kth_score <= 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            TKIJ(strategy="nope")
        with pytest.raises(ValueError):
            TKIJ(assigner="nope")
