"""Tests for the experiment workload catalogue (Tables 1 and 2)."""

import pytest

from repro.experiments import PARAMETERS, QUERIES, build_query, star_spec
from repro.experiments.workloads import QuerySpec
from repro.temporal import ComparatorParams


class TestParameters:
    def test_table2_values(self):
        assert PARAMETERS["P1"].equals == ComparatorParams(4, 16)
        assert PARAMETERS["P1"].greater == ComparatorParams(0, 10)
        assert PARAMETERS["P2"].equals == ComparatorParams(0, 16)
        assert PARAMETERS["P2"].greater == ComparatorParams(2, 8)
        assert PARAMETERS["P3"].equals == ComparatorParams(4, 12)
        assert PARAMETERS["P3"].greater == ComparatorParams(0, 8)
        assert PARAMETERS["PB"].equals == ComparatorParams(0, 0)
        assert PARAMETERS["PB"].greater == ComparatorParams(0, 0)


class TestQueryCatalogue:
    def test_table1_queries_present(self):
        expected = {
            "Qb,b", "Qf,f", "Qo,o", "Qs,f,m", "Qs,s", "Qf,b", "Qo,m", "Qs,m", "QjB,jB", "QsM,sM",
        }
        assert expected <= set(QUERIES)

    def test_qsfm_has_three_predicates(self):
        assert len(QUERIES["Qs,f,m"].predicates) == 3
        assert QUERIES["Qs,f,m"].num_vertices == 3

    def test_build_fixed_query(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, "P1", k=12)
        assert query.k == 12
        assert [e.predicate.name for e in query.edges] == ["starts", "meets"]
        assert query.vertices == ("x1", "x2", "x3")

    def test_build_with_params_object(self, tiny_collections, p1):
        query = build_query("Qb,b", tiny_collections, p1, k=5)
        assert query.edges[0].predicate.params == p1

    def test_star_spec_shapes(self):
        spec = star_spec("Qb*", 5)
        assert spec.num_vertices == 5
        assert all(edge[0] == 1 for edge in spec.predicates)
        assert len(spec.predicates) == 4

    def test_star_requires_num_vertices(self, tiny_collections):
        with pytest.raises(ValueError):
            build_query("Qo*", tiny_collections, "P1")

    def test_star_build(self, tiny_collections):
        collections = tiny_collections + [tiny_collections[0]]
        query = build_query("Qm*", collections, "P1", k=5, num_vertices=4)
        assert query.num_vertices == 4
        assert all(e.predicate.name == "meets" for e in query.edges)

    def test_unknown_query_and_family(self, tiny_collections):
        with pytest.raises(KeyError):
            build_query("Qxx", tiny_collections, "P1")
        with pytest.raises(KeyError):
            star_spec("Qz*", 3)
        with pytest.raises(ValueError):
            star_spec("Qb*", 1)

    def test_spec_requires_enough_collections(self, pair_collections):
        spec = QuerySpec("chain", ((1, 2, "before"), (2, 3, "before")))
        with pytest.raises(ValueError):
            spec.build(pair_collections, PARAMETERS["P1"])

    def test_spec_accepts_mapping(self, tiny_collections):
        spec = QUERIES["Qb,b"]
        mapping = {f"x{i+1}": c for i, c in enumerate(tiny_collections)}
        query = spec.build(mapping, PARAMETERS["P1"], k=3)
        assert query.k == 3
