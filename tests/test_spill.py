"""Unit tests for the out-of-core shuffle: spill runs, transfer strategies and
shared-memory batches (DESIGN.md §10).

The load-bearing invariant throughout: a budgeted (spilling) run and a
shared-memory run must be *byte-identical* to the plain in-memory run — same
outputs, same counters, same shuffle-byte accounting.  The hypothesis property
at the bottom drives that across arbitrary budgets.
"""

from __future__ import annotations

import glob
import pickle

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.columnar import IntervalColumns, SharedIntervalColumns, SharedMemoryPool
from repro.columnar.shm import SEGMENT_PREFIX
from repro.mapreduce import (
    ClusterConfig,
    MapReduceEngine,
    SpilledPartition,
    SpillManager,
    create_transfer,
    estimate_nbytes,
    record_nbytes,
)
from repro.temporal import Interval

from test_backends import run_wordcount, wordcount_input, wordcount_job


def make_columns(uids, payloads=None):
    uids = list(uids)
    return IntervalColumns(
        np.asarray(uids, dtype=np.int64),
        np.asarray([10.0 * u for u in uids], dtype=float),
        np.asarray([10.0 * u + 5.0 for u in uids], dtype=float),
        payloads,
    )


def assert_columns_equal(actual, expected):
    assert np.array_equal(actual.uids, expected.uids)
    assert np.array_equal(actual.starts, expected.starts)
    assert np.array_equal(actual.ends, expected.ends)
    assert actual.payloads == expected.payloads


class TestEstimateNbytes:
    def test_deterministic_and_positive(self):
        values = [None, True, 7, 3.5, "abc", b"xyz", (1, 2), [1.5], {"a": 1}]
        for value in values:
            assert estimate_nbytes(value) > 0
            assert estimate_nbytes(value) == estimate_nbytes(value)

    def test_interval_duck_type(self):
        assert estimate_nbytes(Interval(1, 0.0, 1.0)) == 32
        payload = Interval(1, 0.0, 1.0, payload="pp")
        assert estimate_nbytes(payload) == 32 + estimate_nbytes("pp")

    def test_columns_use_transfer_nbytes(self):
        columns = make_columns([1, 2, 3])
        assert estimate_nbytes(columns) == columns.transfer_nbytes() == 3 * 24
        with_payloads = make_columns([1, 2], payloads=("a", "b"))
        assert estimate_nbytes(with_payloads) == 2 * 24 + 2 * 16

    def test_record_nbytes_sums_key_and_value(self):
        assert record_nbytes(1, "ab") == 8 + (49 + 2)

    def test_identical_for_shared_batches(self):
        columns = make_columns([4, 5, 6])
        shared = SharedIntervalColumns.create(columns)
        try:
            assert estimate_nbytes(shared) == estimate_nbytes(columns)
        finally:
            shared.release(unlink=True)


class TestSpillRuns:
    def test_pickle_run_round_trip(self, tmp_path):
        manager = SpillManager("job")
        partition = {"b": [1, 2], "a": ["x"], 3: [None]}
        run = manager.spill(0, partition)
        # Keys stream back in canonical heterogeneous order: ints before strs
        # (partition_sort_key orders by type name first).
        items = list(run.items())
        assert [key for key, _ in items] == [3, "a", "b"]
        assert dict(items) == partition
        assert manager.runs_written == 1
        assert manager.bytes_spilled > 0
        manager.cleanup()
        assert glob.glob(str(tmp_path / "tkij-spill-*")) == []

    def test_columnar_run_round_trip(self):
        manager = SpillManager("job")
        partition = {
            (1, 0): [make_columns([1, 2]), make_columns([3])],
            (0, 2): [make_columns([7, 8], payloads=("p", None))],
        }
        run = manager.spill(0, partition)
        assert run.path.endswith(".cols")
        items = list(run.items())
        assert [key for key, _ in items] == [(0, 2), (1, 0)]
        by_key = dict(items)
        for key, batches in partition.items():
            assert len(by_key[key]) == len(batches)
            for actual, expected in zip(by_key[key], batches):
                assert_columns_equal(actual, expected)
        manager.cleanup()

    def test_mixed_values_fall_back_to_pickle(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"k": [make_columns([1]), "not-columnar"]})
        assert run.path.endswith(".pkl")
        manager.cleanup()

    def test_cleanup_removes_run_files(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"a": [1]})
        directory = manager.directory
        assert directory.exists()
        manager.cleanup()
        assert not directory.exists()
        assert glob.glob(run.path) == []


class TestSpilledPartitionMerge:
    def test_values_concatenate_in_spill_chronology(self):
        manager = SpillManager("job")
        run0 = manager.spill(0, {"a": [1, 2], "b": [3]})
        run1 = manager.spill(0, {"a": [4], "c": [5]})
        spilled = SpilledPartition(runs=(run0, run1), resident={"a": [6], "d": [7]})
        assert list(spilled.sorted_items()) == [
            ("a", [1, 2, 4, 6]),
            ("b", [3]),
            ("c", [5]),
            ("d", [7]),
        ]
        assert spilled.input_records == 7
        manager.cleanup()

    def test_single_source_values_stay_zero_copy(self):
        resident = {"only": [1, 2, 3]}
        spilled = SpilledPartition(runs=(), resident=resident)
        ((_, values),) = spilled.sorted_items()
        assert values is resident["only"]

    def test_merge_never_mutates_source_lists(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"k": [1]})
        resident = {"k": [2]}
        spilled = SpilledPartition(runs=(run,), resident=resident)
        assert list(spilled.sorted_items()) == [("k", [1, 2])]
        assert resident["k"] == [2]
        manager.cleanup()

    def test_heterogeneous_keys_merge_in_canonical_order(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"s": [1], 2: [2]})
        spilled = SpilledPartition(runs=(run,), resident={1: [3], "t": [4]})
        assert [key for key, _ in spilled.sorted_items()] == [1, 2, "s", "t"]
        manager.cleanup()

    def test_spilled_partition_survives_pickling(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"k": [make_columns([1, 2])]})
        spilled = SpilledPartition(runs=(run,), resident={"k": [make_columns([3])]})
        restored = pickle.loads(pickle.dumps(spilled))
        (key, batches), = restored.sorted_items()
        assert key == "k"
        assert [list(batch.uids) for batch in batches] == [[1, 2], [3]]
        manager.cleanup()


class TestSharedIntervalColumns:
    def test_create_copies_and_descriptor_pickles(self):
        columns = make_columns([1, 2, 3], payloads=("a", None, "c"))
        shared = SharedIntervalColumns.create(columns)
        try:
            assert_columns_equal(shared, columns)
            payload = pickle.dumps(shared)
            # The pickle is a descriptor, not the data: far smaller than the
            # columns themselves for any non-trivial batch.
            assert shared.segment_name.encode() in payload
            attached = pickle.loads(payload)
            try:
                assert_columns_equal(attached, columns)
                assert not attached.uids.flags.writeable
            finally:
                attached.release()
        finally:
            shared.release(unlink=True)
        assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []

    def test_released_batch_refuses_to_pickle(self):
        shared = SharedIntervalColumns.create(make_columns([1]))
        shared.release(unlink=True)
        with pytest.raises(ValueError):
            pickle.dumps(shared)

    def test_pool_deduplicates_per_source_batch(self):
        pool = SharedMemoryPool()
        columns = make_columns([1, 2])
        other = make_columns([3])
        try:
            first = pool.share(columns)
            again = pool.share(columns)
            assert first is again
            assert pool.share(first) is first
            pool.share(other)
            assert pool.segments_created == 2
        finally:
            pool.close()
        assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []

    def test_release_job_unlinks_segments(self):
        pool = SharedMemoryPool()
        shared = pool.share(make_columns([1, 2]))
        name = shared.segment_name
        assert glob.glob(f"/dev/shm/{name}")
        pool.release_job()
        assert glob.glob(f"/dev/shm/{name}") == []


class TestTransferStrategies:
    def test_registry_round_trip(self):
        for name in ("inline", "pickle", "shm"):
            transfer = create_transfer(name)
            assert transfer.name == name
            transfer.close()
        with pytest.raises(ValueError):
            create_transfer("carrier-pigeon")

    def test_inline_is_pass_through(self):
        transfer = create_transfer("inline")
        split = [("k", 1)]
        partition = {"k": [1]}
        assert transfer.prepare_split(split) is split
        assert transfer.prepare_partition(partition) is partition

    def test_pickle_freezes_containers(self):
        transfer = create_transfer("pickle")
        assert transfer.prepare_split([("k", 1)]) == (("k", 1),)
        prepared = transfer.prepare_partition({"k": [1]})
        assert type(prepared) is dict and prepared == {"k": [1]}

    def test_shm_converts_only_columnar_values(self):
        transfer = create_transfer("shm")
        try:
            columns = make_columns([1, 2])
            prepared = transfer.prepare_partition({"k": [columns, "scalar"]})
            assert isinstance(prepared["k"][0], SharedIntervalColumns)
            assert prepared["k"][1] == "scalar"
            assert transfer.segments_created == 1
        finally:
            transfer.close()
        assert glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*") == []

    def test_shm_prepares_spilled_resident_only(self):
        manager = SpillManager("job")
        run = manager.spill(0, {"k": [make_columns([1])]})
        spilled = SpilledPartition(runs=(run,), resident={"k": [make_columns([2])]})
        transfer = create_transfer("shm")
        try:
            prepared = transfer.prepare_partition(spilled)
            assert prepared.runs == (run,)
            assert isinstance(prepared.resident["k"][0], SharedIntervalColumns)
        finally:
            transfer.close()
            manager.cleanup()


class TestBudgetProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(budget=st.integers(min_value=1, max_value=4096))
    def test_any_budget_matches_unbounded(self, budget):
        """The paper-level invariant: spilling must never change an answer."""
        unbounded = run_wordcount("serial")
        cluster = ClusterConfig(
            num_reducers=4, num_mappers=3, backend="serial", memory_budget_bytes=budget
        )
        with MapReduceEngine(cluster) as engine:
            budgeted = engine.run(wordcount_job(), wordcount_input())
        assert budgeted.outputs == unbounded.outputs
        assert budgeted.counters.as_dict() == unbounded.counters.as_dict()
        assert budgeted.metrics.shuffle_bytes == unbounded.metrics.shuffle_bytes
        assert budgeted.metrics.bytes_spilled > 0
        assert budgeted.metrics.spill_runs > 0
        assert glob.glob("/tmp/tkij-spill-*") == []
