"""Tests for the workload generators (synthetic, network trace, hashtags)."""

import numpy as np
import pytest

from repro.datagen import (
    NetworkTraceConfig,
    SyntheticConfig,
    TweetConfig,
    connections_from_packets,
    generate_collections,
    generate_hashtag_collection,
    generate_network_collection,
    generate_packet_log,
    generate_uniform_collection,
    sample_collection,
)
from repro.datagen.network import Packet


class TestSynthetic:
    def test_size_and_ranges(self):
        config = SyntheticConfig(size=500, start_min=0, start_max=1000, length_min=1, length_max=50)
        collection = generate_uniform_collection("c", config, seed=1)
        assert len(collection) == 500
        lengths = collection.ends - collection.starts
        assert collection.starts.min() >= 0
        assert collection.starts.max() <= 1000
        assert lengths.min() >= 1
        assert lengths.max() <= 50

    def test_integer_endpoints(self):
        collection = generate_uniform_collection("c", SyntheticConfig(size=50), seed=2)
        assert np.allclose(collection.starts, np.round(collection.starts))
        assert np.allclose(collection.ends, np.round(collection.ends))

    def test_reproducible_with_seed(self):
        a = generate_uniform_collection("a", SyntheticConfig(size=100), seed=3)
        b = generate_uniform_collection("b", SyntheticConfig(size=100), seed=3)
        assert np.array_equal(a.starts, b.starts)
        assert np.array_equal(a.ends, b.ends)

    def test_generate_collections_names_and_independence(self):
        collections = generate_collections(3, SyntheticConfig(size=20), seed=5)
        assert list(collections) == ["C1", "C2", "C3"]
        assert not np.array_equal(collections["C1"].starts, collections["C2"].starts)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(size=0)
        with pytest.raises(ValueError):
            SyntheticConfig(start_min=10, start_max=5)
        with pytest.raises(ValueError):
            SyntheticConfig(length_min=0)
        with pytest.raises(ValueError):
            generate_collections(0)


class TestNetworkTrace:
    def test_packet_log_generation(self):
        config = NetworkTraceConfig(num_sessions=200, num_clients=10, num_servers=5)
        packets = generate_packet_log(config, seed=1)
        assert len(packets) >= 200
        assert all(0 <= p.client < 10 and 0 <= p.server < 5 for p in packets)

    def test_grouping_rule(self):
        packets = [
            Packet(1, 2, 0.0),
            Packet(1, 2, 30.0),
            Packet(1, 2, 200.0),  # gap > 60s starts a new connection
            Packet(3, 4, 10.0),
        ]
        connections = connections_from_packets(packets, gap_seconds=60.0)
        assert len(connections) == 3
        spans = sorted((c.start, c.end) for c in connections)
        assert (0.0, 30.0) in spans
        assert (200.0, 201.0) in spans  # single-packet connection gets minimum length 1
        assert (10.0, 11.0) in spans

    def test_connection_payload(self):
        packets = [Packet(7, 9, 5.0), Packet(7, 9, 20.0)]
        connections = connections_from_packets(packets)
        assert connections[0].payload == {"client": 7, "server": 9}

    def test_end_to_end_collection_properties(self):
        config = NetworkTraceConfig(num_sessions=800, num_clients=50, num_servers=10)
        collection = generate_network_collection(config, seed=4)
        assert len(collection) > 100
        summary = collection.describe()
        assert summary["length_min"] >= 1.0
        # Heavy tail: the maximum is far larger than the average.
        assert summary["length_max"] > 5 * summary["length_avg"]

    def test_start_distribution_is_skewed(self):
        config = NetworkTraceConfig(num_sessions=1500)
        collection = generate_network_collection(config, seed=6)
        histogram, _ = np.histogram(collection.starts, bins=10)
        # The busiest decile should hold well more than a uniform share.
        assert histogram.max() > 1.5 * len(collection) / 10

    def test_sample_collection(self):
        config = NetworkTraceConfig(num_sessions=400)
        collection = generate_network_collection(config, seed=7)
        sampled = sample_collection(collection, 0.25, seed=8)
        assert len(sampled) == max(1, int(len(collection) * 0.25))
        assert [x.uid for x in sampled] == list(range(len(sampled)))
        with pytest.raises(ValueError):
            sample_collection(collection, 0.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetworkTraceConfig(num_sessions=0)
        with pytest.raises(ValueError):
            NetworkTraceConfig(peak_fraction=1.5)


class TestTweets:
    def test_sizes_and_kinds(self):
        config = TweetConfig(num_hashtags=300, long_lived_fraction=0.1)
        collection = generate_hashtag_collection("h", config, seed=1)
        assert len(collection) == 300
        kinds = {x.payload["kind"] for x in collection}
        assert kinds == {"short", "long"}

    def test_long_topics_are_longer(self):
        collection = generate_hashtag_collection("h", TweetConfig(num_hashtags=500), seed=2)
        short = [x.length for x in collection if x.payload["kind"] == "short"]
        long = [x.length for x in collection if x.payload["kind"] == "long"]
        assert np.mean(long) > 5 * np.mean(short)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TweetConfig(num_hashtags=0)
        with pytest.raises(ValueError):
            TweetConfig(long_lived_fraction=2.0)
