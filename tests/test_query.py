"""Tests for the RTJ query graph and the fluent builder."""

import pytest

from repro.query import QueryBuilder, QueryEdge, RTJQuery
from repro.query.graph import ResultTuple
from repro.temporal import (
    AverageScore,
    Interval,
    IntervalCollection,
    MinScore,
    PredicateParams,
)
from repro.temporal.predicates import before, meets, starts

P1 = PredicateParams.of(4, 16, 0, 10)


@pytest.fixture()
def three_collections():
    c1 = IntervalCollection.from_tuples("c1", [(0, 10), (5, 20)])
    c2 = IntervalCollection.from_tuples("c2", [(10, 30), (40, 50)])
    c3 = IntervalCollection.from_tuples("c3", [(30, 60), (55, 80)])
    return c1, c2, c3


def make_query(c1, c2, c3, k=5):
    return RTJQuery(
        vertices=("x", "y", "z"),
        collections={"x": c1, "y": c2, "z": c3},
        edges=(
            QueryEdge("x", "y", meets(P1)),
            QueryEdge("y", "z", meets(P1)),
        ),
        k=k,
    )


class TestValidation:
    def test_valid_query(self, three_collections):
        query = make_query(*three_collections)
        assert query.num_vertices == 3
        assert query.num_edges == 2

    def test_default_aggregation_is_average(self, three_collections):
        query = make_query(*three_collections)
        assert isinstance(query.aggregation, AverageScore)
        assert query.aggregation.num_edges == 2

    def test_k_must_be_positive(self, three_collections):
        c1, c2, c3 = three_collections
        with pytest.raises(ValueError):
            make_query(c1, c2, c3, k=0)

    def test_self_loop_rejected(self, three_collections):
        c1, c2, c3 = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y"),
                collections={"x": c1, "y": c2},
                edges=(QueryEdge("x", "x", meets(P1)),),
            )

    def test_duplicate_edge_rejected(self, three_collections):
        c1, c2, c3 = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y"),
                collections={"x": c1, "y": c2},
                edges=(QueryEdge("x", "y", meets(P1)), QueryEdge("x", "y", before(P1))),
            )

    def test_anti_parallel_edges_rejected(self, three_collections):
        c1, c2, c3 = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y"),
                collections={"x": c1, "y": c2},
                edges=(QueryEdge("x", "y", meets(P1)), QueryEdge("y", "x", before(P1))),
            )

    def test_disconnected_graph_rejected(self, three_collections):
        c1, c2, c3 = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y", "z"),
                collections={"x": c1, "y": c2, "z": c3},
                edges=(QueryEdge("x", "y", meets(P1)),),
            )

    def test_missing_collection_rejected(self, three_collections):
        c1, c2, _ = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y", "z"),
                collections={"x": c1, "y": c2},
                edges=(QueryEdge("x", "y", meets(P1)), QueryEdge("y", "z", meets(P1))),
            )

    def test_unknown_vertex_in_edge_rejected(self, three_collections):
        c1, c2, _ = three_collections
        with pytest.raises(ValueError):
            RTJQuery(
                vertices=("x", "y"),
                collections={"x": c1, "y": c2},
                edges=(QueryEdge("x", "w", meets(P1)),),
            )

    def test_single_vertex_query_allowed(self, three_collections):
        c1, _, _ = three_collections
        query = RTJQuery(vertices=("x",), collections={"x": c1}, edges=(), k=1)
        assert query.num_edges == 0


class TestScoring:
    def test_score_assignment_uses_aggregation(self, three_collections):
        query = make_query(*three_collections)
        assignment = {
            "x": Interval(0, 0, 10),
            "y": Interval(0, 10, 30),
            "z": Interval(0, 30, 60),
        }
        assert query.score_assignment(assignment) == pytest.approx(1.0)

    def test_score_tuple_by_uids(self, three_collections):
        query = make_query(*three_collections)
        score = query.score_tuple((0, 0, 0))
        assert score == pytest.approx(1.0)

    def test_boolean_holds(self, three_collections):
        query = make_query(*three_collections)
        good = {"x": Interval(0, 0, 10), "y": Interval(0, 10, 30), "z": Interval(0, 30, 60)}
        bad = {"x": Interval(0, 0, 10), "y": Interval(0, 12, 30), "z": Interval(0, 30, 60)}
        assert query.boolean_holds(good)
        assert not query.boolean_holds(bad)

    def test_custom_aggregation(self, three_collections):
        c1, c2, c3 = three_collections
        query = RTJQuery(
            vertices=("x", "y", "z"),
            collections={"x": c1, "y": c2, "z": c3},
            edges=(QueryEdge("x", "y", meets(P1)), QueryEdge("y", "z", before(P1))),
            aggregation=MinScore(),
        )
        assignment = {
            "x": Interval(0, 0, 10),
            "y": Interval(0, 10, 30),
            "z": Interval(0, 29, 60),
        }
        assert query.score_assignment(assignment) == 0.0


class TestStructure:
    def test_join_order_is_connected_prefixes(self, three_collections):
        query = make_query(*three_collections)
        order = query.join_order()
        assert order[0] == "x"
        assert set(order) == {"x", "y", "z"}
        for position in range(1, len(order)):
            assert query.edges_between(order[:position], order[position])

    def test_edges_between(self, three_collections):
        query = make_query(*three_collections)
        connecting = query.edges_between(["x"], "y")
        assert len(connecting) == 1
        assert connecting[0].key() == ("x", "y")

    def test_with_k(self, three_collections):
        query = make_query(*three_collections)
        assert query.with_k(42).k == 42

    def test_edge_position(self, three_collections):
        query = make_query(*three_collections)
        assert query.edge_position(query.edges[1]) == 1

    def test_result_tuple_sort_key(self):
        a = ResultTuple((1, 2), 0.9)
        b = ResultTuple((0, 1), 0.5)
        c = ResultTuple((0, 0), 0.9)
        assert sorted([a, b, c], key=lambda r: r.sort_key()) == [c, a, b]


class TestBuilder:
    def test_builder_end_to_end(self, three_collections):
        c1, c2, c3 = three_collections
        query = (
            QueryBuilder(name="Qs,m", params=P1)
            .add_collection("x1", c1)
            .add_collection("x2", c2)
            .add_collection("x3", c3)
            .add_predicate("x1", "x2", "starts")
            .add_predicate("x2", "x3", "meets")
            .top(7)
            .build()
        )
        assert query.k == 7
        assert query.name == "Qs,m"
        assert [e.predicate.name for e in query.edges] == ["starts", "meets"]

    def test_builder_accepts_predicate_objects(self, three_collections):
        c1, c2, _ = three_collections
        query = (
            QueryBuilder(params=P1)
            .add_collection("x", c1)
            .add_collection("y", c2)
            .add_predicate("x", "y", starts(P1))
            .build()
        )
        assert query.edges[0].predicate.name == "starts"

    def test_builder_duplicate_vertex_rejected(self, three_collections):
        c1, _, _ = three_collections
        builder = QueryBuilder().add_collection("x", c1)
        with pytest.raises(ValueError):
            builder.add_collection("x", c1)

    def test_builder_requires_collections_before_predicates(self, three_collections):
        c1, _, _ = three_collections
        builder = QueryBuilder().add_collection("x", c1)
        with pytest.raises(ValueError):
            builder.add_predicate("x", "y", "meets")

    def test_builder_custom_aggregation(self, three_collections):
        c1, c2, _ = three_collections
        query = (
            QueryBuilder(params=P1)
            .add_collection("x", c1)
            .add_collection("y", c2)
            .add_predicate("x", "y", "before")
            .aggregate_with(MinScore())
            .build()
        )
        assert isinstance(query.aggregation, MinScore)

    def test_builder_add_collections_mapping(self, three_collections):
        c1, c2, _ = three_collections
        query = (
            QueryBuilder(params=P1)
            .add_collections({"x": c1, "y": c2})
            .add_predicate("x", "y", "before")
            .build()
        )
        assert query.vertices == ("x", "y")
