"""Tests for statistics collection (granules, bucket matrices, the Map-Reduce job)."""

import pytest

from repro.core import Granularity, collect_statistics, collect_statistics_mapreduce
from repro.core.statistics import BucketMatrix
from repro.mapreduce import ClusterConfig, MapReduceEngine
from repro.temporal import Interval, IntervalCollection


@pytest.fixture()
def collection():
    return IntervalCollection(
        "c",
        [
            Interval(0, 0.0, 5.0),
            Interval(1, 12.0, 18.0),
            Interval(2, 15.0, 35.0),
            Interval(3, 38.0, 40.0),
            Interval(4, 1.0, 39.0),
        ],
    )


class TestGranularity:
    def test_width(self):
        granularity = Granularity(0.0, 40.0, 4)
        assert granularity.width == 10.0

    def test_granule_of_clamps(self):
        granularity = Granularity(0.0, 40.0, 4)
        assert granularity.granule_of(-5.0) == 0
        assert granularity.granule_of(0.0) == 0
        assert granularity.granule_of(9.999) == 0
        assert granularity.granule_of(10.0) == 1
        assert granularity.granule_of(40.0) == 3
        assert granularity.granule_of(100.0) == 3

    def test_granule_range(self):
        granularity = Granularity(0.0, 40.0, 4)
        assert granularity.granule_range(1) == (10.0, 20.0)
        with pytest.raises(IndexError):
            granularity.granule_range(4)

    def test_bucket_of(self):
        granularity = Granularity(0.0, 40.0, 4)
        assert granularity.bucket_of(Interval(0, 12.0, 18.0)) == (1, 1)
        assert granularity.bucket_of(Interval(0, 15.0, 35.0)) == (1, 3)

    def test_bucket_box(self):
        granularity = Granularity(0.0, 40.0, 4)
        box = granularity.bucket_box((1, 3))
        assert box.start_range == (10.0, 20.0)
        assert box.end_range == (30.0, 40.0)

    def test_degenerate_range(self):
        granularity = Granularity(5.0, 5.0, 3)
        assert granularity.granule_of(5.0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Granularity(0.0, 10.0, 0)
        with pytest.raises(ValueError):
            Granularity(10.0, 0.0, 4)

    def test_for_collection(self, collection):
        granularity = Granularity.for_collection(collection, 4)
        assert granularity.time_min == 0.0
        assert granularity.time_max == 40.0


class TestBucketMatrix:
    def test_add_and_count(self):
        matrix = BucketMatrix("c", Granularity(0.0, 40.0, 4))
        matrix.add((0, 0))
        matrix.add((0, 0))
        matrix.add((1, 3), amount=5)
        assert matrix.count((0, 0)) == 2
        assert matrix.count((1, 3)) == 5
        assert matrix.count((2, 2)) == 0
        assert matrix.total() == 7
        assert matrix.nonempty_buckets() == [(0, 0), (1, 3)]

    def test_iteration_sorted(self):
        matrix = BucketMatrix("c", Granularity(0.0, 40.0, 4))
        matrix.add((2, 3))
        matrix.add((0, 1))
        assert [key for key, _ in matrix] == [(0, 1), (2, 3)]


class TestCollectStatistics:
    def test_counts_match_collection_size(self, collection):
        statistics = collect_statistics({"c": collection}, num_granules=4)
        matrix = statistics.matrix("c")
        assert matrix.total() == len(collection)
        assert statistics.num_granules == 4

    def test_expected_buckets(self, collection):
        statistics = collect_statistics({"c": collection}, num_granules=4)
        matrix = statistics.matrix("c")
        assert matrix.count((0, 0)) == 1  # [0, 5]
        assert matrix.count((1, 1)) == 1  # [12, 18]
        assert matrix.count((1, 3)) == 1  # [15, 35]
        assert matrix.count((3, 3)) == 1  # [38, 40]
        assert matrix.count((0, 3)) == 1  # [1, 39]

    def test_average_lengths_recorded(self, collection):
        statistics = collect_statistics({"c": collection}, num_granules=4)
        assert statistics.average_lengths["c"] == pytest.approx(collection.average_length())

    def test_bucket_of_helper(self, collection):
        statistics = collect_statistics({"c": collection}, num_granules=4)
        assert statistics.bucket_of("c", collection.get(2)) == (1, 3)

    def test_nonempty_bucket_count(self, collection):
        statistics = collect_statistics({"c": collection}, num_granules=4)
        assert statistics.nonempty_bucket_count("c") == 5

    def test_mapreduce_path_matches_direct(self, collection):
        other = IntervalCollection(
            "d", [Interval(0, 2.0, 9.0), Interval(1, 20.0, 31.0)]
        )
        collections = {"c": collection, "d": other}
        direct = collect_statistics(collections, num_granules=5)
        engine = MapReduceEngine(ClusterConfig(num_reducers=2, num_mappers=3))
        distributed = collect_statistics_mapreduce(collections, num_granules=5, engine=engine)
        for name in collections:
            assert dict(direct.matrix(name).counts) == dict(distributed.matrix(name).counts)
        assert distributed.collection_metrics is not None
        assert distributed.collection_metrics.shuffle_records == len(collection) + len(other)
