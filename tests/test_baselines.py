"""Tests for the naive oracle and the Boolean-join baselines (All-Matrix, RCCIS)."""

import pytest

from repro.baselines import (
    AllMatrixConfig,
    AllMatrixJoin,
    RCCISConfig,
    RCCISJoin,
    all_pair_scores,
    naive_boolean_matches,
    naive_top_k,
)
from repro.experiments import PARAMETERS, build_query
from repro.mapreduce import ClusterConfig
from repro.temporal import Interval, IntervalCollection
from repro.temporal.predicates import before, meets


@pytest.fixture()
def chain_collections():
    """Collections engineered so Boolean before/meets chains have known matches."""
    c1 = IntervalCollection("c1", [Interval(0, 0, 10), Interval(1, 5, 15), Interval(2, 90, 95)])
    c2 = IntervalCollection("c2", [Interval(0, 10, 20), Interval(1, 30, 40), Interval(2, 16, 25)])
    c3 = IntervalCollection("c3", [Interval(0, 20, 30), Interval(1, 50, 60), Interval(2, 41, 42)])
    return [c1, c2, c3]


class TestNaive:
    def test_top_k_sorted_and_capped(self, tiny_collections):
        query = build_query("Qo,m", tiny_collections, "P1", k=7)
        results = naive_top_k(query)
        assert len(results) == 7
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_boolean_matches(self, chain_collections):
        query = build_query("Qb,b", chain_collections, "PB", k=100)
        matches = naive_boolean_matches(query)
        assert all(r.score == 1.0 for r in matches)
        # before(x1,x2) & before(x2,x3): count by hand.
        expected = 0
        for x in chain_collections[0]:
            for y in chain_collections[1]:
                for z in chain_collections[2]:
                    if x.end < y.start and y.end < z.start:
                        expected += 1
        assert len(matches) == expected

    def test_boolean_matches_limit(self, chain_collections):
        query = build_query("Qb,b", chain_collections, "PB", k=100)
        assert len(naive_boolean_matches(query, limit=1)) == 1

    def test_all_pair_scores_sorted(self, pair_collections):
        scores = all_pair_scores(meets(PARAMETERS["P1"]), pair_collections[0], pair_collections[1])
        assert len(scores) == len(pair_collections[0]) * len(pair_collections[1])
        assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))

    def test_all_pair_scores_top_truncation(self, pair_collections):
        scores = all_pair_scores(
            before(PARAMETERS["P1"]), pair_collections[0], pair_collections[1], top=10
        )
        assert len(scores) == 10


class TestAllMatrix:
    def test_finds_boolean_matches(self, chain_collections):
        query = build_query("Qb,b", chain_collections, "PB", k=50)
        baseline = AllMatrixJoin(
            cluster=ClusterConfig(num_reducers=4), config=AllMatrixConfig(num_partitions=3)
        )
        result = baseline.execute(query)
        expected = naive_boolean_matches(query)
        assert {r.uids for r in result.results} <= {r.uids for r in expected} or len(
            result.results
        ) == query.k
        # Every returned tuple genuinely satisfies the Boolean query.
        for r in result.results:
            assignment = {
                vertex: query.collections[vertex].get(uid)
                for vertex, uid in zip(query.vertices, r.uids)
            }
            assert query.boolean_holds(assignment)

    def test_respects_k(self, small_collections):
        query = build_query("Qb,b", small_collections, "PB", k=5)
        baseline = AllMatrixJoin(cluster=ClusterConfig(num_reducers=4))
        result = baseline.execute(query)
        assert len(result.results) <= 5

    def test_metrics_reported(self, chain_collections):
        query = build_query("Qb,b", chain_collections, "PB", k=5)
        result = AllMatrixJoin(cluster=ClusterConfig(num_reducers=2)).execute(query)
        assert result.name == "All-Matrix"
        assert result.shuffle_records > 0
        assert result.elapsed_seconds > 0
        assert "phase0_seconds" in result.describe()


class TestRCCIS:
    def test_finds_colocation_matches(self, chain_collections):
        query = build_query("Qo,m", chain_collections, "PB", k=50)
        baseline = RCCISJoin(
            cluster=ClusterConfig(num_reducers=4), config=RCCISConfig(num_granules=4)
        )
        result = baseline.execute(query)
        expected = {r.uids for r in naive_boolean_matches(query)}
        got = {r.uids for r in result.results}
        # RCCIS caps at k per reducer, but every returned tuple must be a true match
        # and, because k is large here, all matches must be found.
        assert got == expected

    def test_no_duplicate_results(self, small_collections):
        query = build_query("Qo,o", small_collections, "PB", k=1000)
        baseline = RCCISJoin(
            cluster=ClusterConfig(num_reducers=4), config=RCCISConfig(num_granules=6)
        )
        result = baseline.execute(query)
        uids = [r.uids for r in result.results]
        assert len(uids) == len(set(uids))

    def test_two_phases_recorded(self, chain_collections):
        query = build_query("Qo,m", chain_collections, "PB", k=5)
        result = RCCISJoin(cluster=ClusterConfig(num_reducers=2)).execute(query)
        assert result.name == "RCCIS"
        assert len(result.phase_metrics) == 2
        assert result.phase_metrics[0].job_name == "rccis-replication"
        assert result.phase_metrics[1].job_name == "rccis-join"
