"""Tests for incremental statistics maintenance (paper §3.2, "we can easily handle updates")."""

import pytest

from repro import TKIJ, ClusterConfig
from repro.baselines import naive_top_k
from repro.core import collect_statistics, update_statistics
from repro.experiments import build_query
from repro.temporal import Interval, IntervalCollection


@pytest.fixture()
def base_collection():
    return IntervalCollection(
        "c",
        [Interval(0, 0.0, 10.0), Interval(1, 15.0, 30.0), Interval(2, 35.0, 40.0)],
    )


class TestUpdateStatistics:
    def test_insertions_are_counted(self, base_collection):
        statistics = collect_statistics({"c": base_collection}, num_granules=4)
        new_interval = Interval(3, 1.0, 9.0)
        matrix = statistics.matrix("c")
        bucket = matrix.granularity.bucket_of(new_interval)
        before = matrix.count(bucket)
        update_statistics(statistics, inserted={"c": [new_interval]})
        assert matrix.total() == 4
        assert matrix.count(bucket) == before + 1

    def test_deletions_are_subtracted(self, base_collection):
        statistics = collect_statistics({"c": base_collection}, num_granules=4)
        matrix = statistics.matrix("c")
        victim = base_collection.get(0)
        bucket = matrix.granularity.bucket_of(victim)
        assert matrix.count(bucket) == 1
        update_statistics(statistics, deleted={"c": [victim]})
        assert matrix.total() == 2
        assert matrix.count(bucket) == 0
        assert bucket not in dict(matrix.counts)

    def test_deleting_more_than_present_rejected(self, base_collection):
        statistics = collect_statistics({"c": base_collection}, num_granules=4)
        with pytest.raises(ValueError):
            update_statistics(
                statistics,
                deleted={"c": [base_collection.get(0), Interval(9, 2.0, 8.0)]},
            )

    def test_out_of_range_insertions_clamp_to_border_granules(self, base_collection):
        statistics = collect_statistics({"c": base_collection}, num_granules=4)
        update_statistics(statistics, inserted={"c": [Interval(4, -100.0, 500.0)]})
        matrix = statistics.matrix("c")
        assert matrix.count((0, 3)) == 1

    def test_incremental_equals_recollection(self, base_collection):
        """Insert-then-update must equal collecting statistics over the final data."""
        added = [Interval(10, 5.0, 25.0), Interval(11, 36.0, 39.0)]
        removed = [base_collection.get(1)]

        statistics = collect_statistics({"c": base_collection}, num_granules=4)
        update_statistics(statistics, inserted={"c": added}, deleted={"c": removed})

        final_intervals = [
            x for x in list(base_collection) + added if x.uid != removed[0].uid
        ]
        # Rebuild over the final data using the *original* granule boundaries so the
        # comparison is apples to apples.
        expected = {}
        granularity = statistics.matrix("c").granularity
        for x in final_intervals:
            key = granularity.bucket_of(x)
            expected[key] = expected.get(key, 0) + 1
        assert dict(statistics.matrix("c").counts) == expected

    def test_query_after_update_matches_oracle(self, tiny_collections):
        """TKIJ run with incrementally-updated statistics still returns exact results."""
        query = build_query("Qo,m", tiny_collections, "P1", k=8)
        collections = {c.name: c for c in tiny_collections}
        statistics = collect_statistics(collections, num_granules=4)

        # Simulate an append-only update: 10 new intervals land in the first collection.
        first = tiny_collections[0]
        new_intervals = [
            Interval(1000 + i, 50.0 * i, 50.0 * i + 20.0) for i in range(10)
        ]
        first.extend(new_intervals)
        update_statistics(statistics, inserted={first.name: new_intervals})

        tkij = TKIJ(num_granules=4, cluster=ClusterConfig(num_reducers=4, num_mappers=2))
        result = tkij.execute(query, statistics=statistics)
        expected = naive_top_k(query)
        assert [round(r.score, 9) for r in result.results] == [
            round(r.score, 9) for r in expected
        ]
