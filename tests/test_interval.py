"""Tests for the interval data model."""

import numpy as np
import pytest

from repro.temporal import Interval, IntervalCollection


class TestInterval:
    def test_basic_fields(self):
        x = Interval(1, 5.0, 9.0)
        assert x.uid == 1
        assert x.start == 5.0
        assert x.end == 9.0
        assert x.length == 4.0

    def test_zero_length_allowed(self):
        x = Interval(0, 3.0, 3.0)
        assert x.length == 0.0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Interval(0, 5.0, 4.0)

    def test_endpoint_accessor(self):
        x = Interval(0, 1.0, 2.0)
        assert x.endpoint("start") == 1.0
        assert x.endpoint("end") == 2.0
        with pytest.raises(ValueError):
            x.endpoint("middle")

    def test_shift(self):
        x = Interval(7, 1.0, 2.0, payload="p")
        shifted = x.shift(10.0)
        assert (shifted.start, shifted.end) == (11.0, 12.0)
        assert shifted.uid == 7
        assert shifted.payload == "p"

    def test_overlaps(self):
        a = Interval(0, 0.0, 10.0)
        b = Interval(1, 5.0, 15.0)
        c = Interval(2, 11.0, 12.0)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlaps_touching_endpoints(self):
        a = Interval(0, 0.0, 10.0)
        b = Interval(1, 10.0, 20.0)
        assert a.overlaps(b)

    def test_immutable(self):
        x = Interval(0, 1.0, 2.0)
        with pytest.raises(AttributeError):
            x.start = 5.0


class TestIntervalCollection:
    def test_from_tuples_assigns_ids(self):
        collection = IntervalCollection.from_tuples("c", [(0, 1), (2, 3), (4, 8)])
        assert len(collection) == 3
        assert [x.uid for x in collection] == [0, 1, 2]

    def test_from_arrays(self):
        collection = IntervalCollection.from_arrays("c", [0, 5], [3, 9])
        assert collection[1].end == 9.0

    def test_from_arrays_length_mismatch(self):
        with pytest.raises(ValueError):
            IntervalCollection.from_arrays("c", [0, 5], [3])

    def test_get_by_uid(self, handmade_collection):
        assert handmade_collection.get(3).start == 25.0

    def test_add_invalidates_cache(self, handmade_collection):
        _ = handmade_collection.starts
        handmade_collection.add(Interval(99, 100.0, 110.0))
        assert len(handmade_collection.starts) == 6
        assert handmade_collection.get(99).end == 110.0

    def test_extend(self):
        collection = IntervalCollection("c")
        collection.extend([Interval(0, 0, 1), Interval(1, 1, 2)])
        assert len(collection) == 2

    def test_numpy_views(self, handmade_collection):
        assert isinstance(handmade_collection.starts, np.ndarray)
        assert handmade_collection.starts[0] == 0.0
        assert handmade_collection.ends[-1] == 41.0

    def test_time_range(self, handmade_collection):
        assert handmade_collection.time_range() == (0.0, 41.0)

    def test_time_range_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalCollection("empty").time_range()

    def test_average_length(self):
        collection = IntervalCollection.from_tuples("c", [(0, 10), (0, 20)])
        assert collection.average_length() == 15.0

    def test_total_span(self, handmade_collection):
        assert handmade_collection.total_span() == 41.0

    def test_describe(self, handmade_collection):
        summary = handmade_collection.describe()
        assert summary["count"] == 5
        assert summary["length_min"] == 1.0
        assert summary["length_max"] == 18.0

    def test_iteration_order(self, handmade_collection):
        uids = [x.uid for x in handmade_collection]
        assert uids == [0, 1, 2, 3, 4]
