"""Tests for the bound-solver substrate (domains, objectives, branch-and-bound)."""

import itertools

import pytest

from repro.solver import (
    AggregateObjective,
    BranchAndBoundSolver,
    DomainSet,
    EdgeObjective,
    VariableBox,
)
from repro.temporal import AverageScore, Interval, PredicateParams
from repro.temporal.predicates import meets, starts

P1 = PredicateParams.of(4, 16, 0, 10)


class TestVariableBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            VariableBox(10, 5, 0, 1)

    def test_feasibility(self):
        assert VariableBox(0, 10, 5, 20).is_feasible
        assert not VariableBox(30, 40, 0, 20).is_feasible

    def test_split_start(self):
        box = VariableBox(0, 10, 20, 30)
        low, high = box.split("start")
        assert low.start_range == (0, 5)
        assert high.start_range == (5, 10)
        assert low.end_range == (20, 30)

    def test_split_end(self):
        box = VariableBox(0, 10, 20, 30)
        low, high = box.split("end")
        assert low.end_range == (20, 25)
        assert high.end_range == (25, 30)

    def test_width(self):
        box = VariableBox(0, 10, 20, 24)
        assert box.width("start") == 10
        assert box.width("end") == 4

    def test_sample_interval_respects_order(self):
        box = VariableBox(0, 10, 2, 6)
        sample = box.sample_interval()
        assert sample.start <= sample.end
        assert 0 <= sample.start <= 10
        assert 2 <= sample.end <= 6

    def test_from_granules(self):
        box = VariableBox.from_granules((10, 20), (20, 30))
        assert box.start_range == (10, 20)
        assert box.end_range == (20, 30)


class TestDomainSet:
    def test_endpoint_domains(self):
        domains = DomainSet.from_mapping({"x": VariableBox(0, 10, 10, 20)})
        flat = domains.endpoint_domains()
        assert len(flat) == 2
        assert flat[next(iter(flat))] in [(0.0, 10.0), (10.0, 20.0)]

    def test_widest(self):
        domains = DomainSet.from_mapping(
            {"x": VariableBox(0, 10, 10, 20), "y": VariableBox(0, 100, 0, 5)}
        )
        var, endpoint, width = domains.widest()
        assert (var, endpoint, width) == ("y", "start", 100)

    def test_split_keeps_other_variables(self):
        domains = DomainSet.from_mapping(
            {"x": VariableBox(0, 10, 10, 20), "y": VariableBox(0, 4, 4, 8)}
        )
        halves = list(domains.split("x", "start"))
        assert len(halves) == 2
        for half in halves:
            assert half.box_of("y") == domains.box_of("y")

    def test_split_drops_infeasible_halves(self):
        # Splitting the end axis below the start range produces an infeasible half.
        domains = DomainSet.from_mapping({"x": VariableBox(10, 12, 0, 22)})
        halves = list(domains.split("x", "end"))
        assert len(halves) == 2  # both halves still admit start <= end here
        domains = DomainSet.from_mapping({"x": VariableBox(10, 12, 8, 12)})
        halves = list(domains.split("x", "end"))
        # The lower half [8, 10] is only just feasible (start_low 10 <= 10).
        assert all(half.box_of("x").is_feasible for half in halves)

    def test_sample_assignment(self):
        domains = DomainSet.from_mapping(
            {"x": VariableBox(0, 10, 10, 20), "y": VariableBox(5, 6, 7, 9)}
        )
        assignment = domains.sample_assignment()
        assert set(assignment) == {"x", "y"}
        assert all(i.start <= i.end for i in assignment.values())


def _two_edge_objective():
    """Objective for starts(x, y), starts(y, z) with the normalised sum (paper Fig. 6)."""
    edges = (
        EdgeObjective.from_edge("x", "y", starts(PredicateParams.of(1, 3, 0, 4))),
        EdgeObjective.from_edge("y", "z", starts(PredicateParams.of(1, 3, 0, 4))),
    )
    return AggregateObjective(edges=edges, aggregation=AverageScore(num_edges=2))


class TestObjectives:
    def test_edge_objective_evaluate(self):
        edge = EdgeObjective.from_edge("a", "b", meets(P1))
        value = edge.evaluate({"a": Interval(0, 0, 10), "b": Interval(1, 10, 20)})
        assert value == 1.0

    def test_relaxed_range_contains_evaluations(self):
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        lo, hi = objective.relaxed_range(domains)
        for xs, ys, zs in itertools.product((10, 15, 20), (20, 25, 30), (30, 35, 40)):
            assignment = {
                "x": Interval(0, xs, 25),
                "y": Interval(1, ys, 35),
                "z": Interval(2, zs, 40),
            }
            value = objective.evaluate(assignment)
            assert lo - 1e-9 <= value <= hi + 1e-9

    def test_edge_ranges_length(self):
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        assert len(objective.edge_ranges(domains)) == 2


class TestBranchAndBound:
    def test_paper_figure6_loose_vs_tight(self):
        """The joint upper bound must be tighter than the independent per-edge bounds.

        This is the example of Figure 6: both starts predicates can individually
        reach 1, but not simultaneously, so brute-force finds UB = 0.5 while loose
        reports 1.0.
        """
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        loose_lo, loose_hi = objective.relaxed_range(domains)
        assert loose_hi == pytest.approx(1.0)
        solver = BranchAndBoundSolver(max_nodes=512, tolerance=1e-3)
        tight_hi = solver.upper_bound(objective, domains)
        assert tight_hi < loose_hi
        assert tight_hi == pytest.approx(0.5, abs=0.05)

    def test_bounds_bracket_enumerated_optimum(self):
        """LB/UB must bracket the true min/max over a fine sample grid."""
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        solver = BranchAndBoundSolver(max_nodes=256)
        lb, ub = solver.bounds(objective, domains)
        values = []
        grid = [0.0, 0.25, 0.5, 0.75, 1.0]
        for fx, fy, fz in itertools.product(grid, repeat=3):
            assignment = {
                "x": Interval(0, 10 + 10 * fx, 20 + 10 * fx),
                "y": Interval(1, 20 + 10 * fy, 30 + 10 * fy),
                "z": Interval(2, 30 + 10 * fz, 30 + 10 * fz + 5),
            }
            values.append(objective.evaluate(assignment))
        assert lb <= min(values) + 1e-9
        assert ub >= max(values) - 1e-9

    def test_small_budget_still_valid(self):
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        tight = BranchAndBoundSolver(max_nodes=512).bounds(objective, domains)
        cheap = BranchAndBoundSolver(max_nodes=2).bounds(objective, domains)
        # A smaller budget can only loosen the bounds, never invalidate them.
        assert cheap[0] <= tight[0] + 1e-9
        assert cheap[1] >= tight[1] - 1e-9

    def test_stats_are_recorded(self):
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        solver = BranchAndBoundSolver()
        solver.bounds(objective, domains)
        assert solver.stats.calls == 2
        assert solver.stats.evaluations > 0

    def test_relaxed_bounds_shortcut(self):
        objective = _two_edge_objective()
        domains = DomainSet.from_mapping(
            {
                "x": VariableBox(10, 20, 20, 30),
                "y": VariableBox(20, 30, 30, 40),
                "z": VariableBox(30, 40, 30, 40),
            }
        )
        solver = BranchAndBoundSolver()
        assert solver.relaxed_bounds(objective, domains) == objective.relaxed_range(domains)

    def test_degenerate_box_is_exact(self):
        objective = AggregateObjective(
            edges=(EdgeObjective.from_edge("x", "y", meets(P1)),),
            aggregation=AverageScore(num_edges=1),
        )
        domains = DomainSet.from_mapping(
            {"x": VariableBox(0, 0, 10, 10), "y": VariableBox(10, 10, 20, 20)}
        )
        lb, ub = BranchAndBoundSolver().bounds(objective, domains)
        assert lb == pytest.approx(1.0)
        assert ub == pytest.approx(1.0)
