"""Columnar substrate: elementwise kernel parity and record-batch behaviour.

The vector kernels must be *bit-identical* to their scalar twins — the local
join compares scores against pruning thresholds, so any rounding drift would
change which tuples are enumerated.  The hypothesis suites below therefore
assert exact float equality (no tolerance) over random ``(lambda, rho)`` grids,
including the Boolean corner ``lambda = rho = 0``.
"""

from __future__ import annotations

import pickle

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.columnar import (
    IntervalColumns,
    combine_scores_v,
    compile_vector,
    equals_score_v,
    greater_score_v,
)
from repro.temporal import (
    ComparatorParams,
    Interval,
    PredicateParams,
    equals_score,
    greater_score,
)
from repro.temporal.aggregation import AverageScore, MinScore, SumScore, WeightedSum
from repro.temporal.predicates import ALLEN_PREDICATES

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Includes the Boolean corner lam = rho = 0 explicitly (via min_value=0 plus a
# dedicated test) and degenerate rho-only / lam-only configurations.
params_strategy = st.one_of(
    st.just(ComparatorParams(0.0, 0.0)),
    st.builds(
        ComparatorParams,
        lam=st.floats(0, 25, allow_nan=False),
        rho=st.floats(0, 50, allow_nan=False),
    ),
)

differences_strategy = st.lists(
    st.floats(-300, 300, allow_nan=False, allow_infinity=False), min_size=1, max_size=40
)


class TestComparatorKernels:
    @_SETTINGS
    @given(params=params_strategy, differences=differences_strategy)
    def test_equals_kernel_matches_scalar_elementwise(self, params, differences):
        batch = equals_score_v(np.array(differences), params)
        expected = [equals_score(d, 0.0, params) for d in differences]
        assert list(batch) == expected

    @_SETTINGS
    @given(params=params_strategy, differences=differences_strategy)
    def test_greater_kernel_matches_scalar_elementwise(self, params, differences):
        batch = greater_score_v(np.array(differences), params)
        expected = [greater_score(d, 0.0, params) for d in differences]
        assert list(batch) == expected

    def test_boolean_corner_is_a_step(self):
        boolean = ComparatorParams(0.0, 0.0)
        d = np.array([-1.0, -1e-12, 0.0, 1e-12, 1.0])
        assert list(equals_score_v(d, boolean)) == [0.0, 0.0, 1.0, 0.0, 0.0]
        assert list(greater_score_v(d, boolean)) == [0.0, 0.0, 0.0, 1.0, 1.0]


interval_strategy = st.builds(
    lambda uid, start, length: Interval(uid, start, start + length),
    uid=st.integers(0, 10_000),
    start=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
    length=st.floats(0, 500, allow_nan=False, allow_infinity=False),
)


class TestVectorPredicates:
    @_SETTINGS
    @given(
        name=st.sampled_from(sorted(ALLEN_PREDICATES)),
        lam_eq=st.floats(0, 10),
        rho_eq=st.floats(0, 20),
        lam_gt=st.floats(0, 10),
        rho_gt=st.floats(0, 20),
        x=interval_strategy,
        ys=st.lists(interval_strategy, min_size=1, max_size=25),
    )
    def test_vector_scorer_matches_compiled_scalar(
        self, name, lam_eq, rho_eq, lam_gt, rho_gt, x, ys
    ):
        predicate = ALLEN_PREDICATES[name](
            PredicateParams.of(lam_eq, rho_eq, lam_gt, rho_gt)
        )
        scalar = predicate.compile()
        vector = compile_vector(predicate)
        columns = IntervalColumns.from_intervals(ys)
        batch = vector(x.start, x.end, columns.starts, columns.ends)
        assert list(batch) == [scalar(x, y) for y in ys]

    @_SETTINGS
    @given(
        name=st.sampled_from(sorted(ALLEN_PREDICATES)),
        xs=st.lists(interval_strategy, min_size=1, max_size=25),
        y=interval_strategy,
    )
    def test_vector_scorer_boolean_params_fixed_target(self, name, xs, y):
        predicate = ALLEN_PREDICATES[name](PredicateParams.boolean())
        scalar = predicate.compile()
        vector = compile_vector(predicate)
        columns = IntervalColumns.from_intervals(xs)
        batch = vector(columns.starts, columns.ends, y.start, y.end)
        assert list(batch) == [scalar(x, y) for x in xs]


class TestVectorAggregation:
    @_SETTINGS
    @given(
        rows=st.lists(
            st.tuples(st.floats(0, 1), st.floats(0, 1), st.floats(0, 1)),
            min_size=1,
            max_size=20,
        )
    )
    def test_combine_matches_scalar_for_all_aggregations(self, rows):
        columns = [np.array([row[i] for row in rows]) for i in range(3)]
        size = len(rows)
        for aggregation in (
            AverageScore(num_edges=3),
            SumScore(),
            MinScore(),
            WeightedSum((0.5, 0.0, 2.0)),
        ):
            batch = combine_scores_v(aggregation, columns, size)
            expected = [aggregation.combine(list(row)) for row in rows]
            assert list(batch) == expected

    def test_combine_broadcasts_scalar_parts(self):
        aggregation = AverageScore(num_edges=2)
        batch = combine_scores_v(aggregation, [0.5, np.array([0.0, 1.0])], 2)
        assert list(batch) == [aggregation.combine([0.5, 0.0]), aggregation.combine([0.5, 1.0])]


class TestIntervalColumns:
    def _columns(self):
        intervals = [Interval(3, 0.0, 2.0, "a"), Interval(1, 1.0, 4.0), Interval(2, 2.0, 2.5)]
        return intervals, IntervalColumns.from_intervals(intervals)

    def test_roundtrip_preserves_rows(self):
        intervals, columns = self._columns()
        assert len(columns) == 3
        assert columns.to_intervals() is intervals  # memoised original rows
        assert [columns.record(i).uid for i in range(3)] == [3, 1, 2]
        assert columns.payloads == ("a", None, None)

    def test_payloads_dropped_when_all_none(self):
        columns = IntervalColumns.from_intervals([Interval(0, 0.0, 1.0), Interval(1, 2.0, 3.0)])
        assert columns.payloads is None

    def test_pickle_ships_arrays_not_objects(self):
        _, columns = self._columns()
        restored = pickle.loads(pickle.dumps(columns))
        assert restored._intervals is None  # the row view does not travel
        assert list(restored.uids) == [3, 1, 2]
        rebuilt = restored.to_intervals()
        assert [x.uid for x in rebuilt] == [3, 1, 2]
        assert rebuilt[0].payload == "a"

    def test_sort_by_uid(self):
        _, columns = self._columns()
        ordered = columns.sort_by_uid()
        assert list(ordered.uids) == [1, 2, 3]
        assert ordered.payloads == (None, None, "a")

    def test_concat(self):
        left = IntervalColumns.from_intervals([Interval(0, 0.0, 1.0)])
        right = IntervalColumns.from_intervals([Interval(1, 2.0, 3.0, "p")])
        merged = IntervalColumns.concat([left, right])
        assert list(merged.uids) == [0, 1]
        assert merged.payloads == (None, "p")

    def test_empty_batch(self):
        columns = IntervalColumns.from_intervals([])
        assert len(columns) == 0
        assert columns.payloads is None


class TestKernelValidation:
    def test_unknown_kernel_rejected(self):
        from repro.core import LocalJoinConfig, LocalTopKJoin
        from repro.query.graph import QueryEdge, RTJQuery
        from repro.temporal.interval import IntervalCollection
        from repro.temporal.predicates import before

        collection = IntervalCollection.from_tuples("c", [(0.0, 1.0)])
        query = RTJQuery(
            vertices=("x", "y"),
            collections={"x": collection, "y": collection},
            edges=(QueryEdge("x", "y", before(PredicateParams.boolean())),),
            k=1,
        )
        with pytest.raises(ValueError, match="unknown join kernel"):
            LocalTopKJoin(query, LocalJoinConfig(kernel="simd"))
