"""Tests for monotone aggregation functions and residual thresholds."""

import pytest

from repro.temporal import AverageScore, MinScore, SumScore, WeightedSum


class TestCombine:
    def test_sum(self):
        assert SumScore().combine([0.2, 0.3, 0.5]) == pytest.approx(1.0)

    def test_average(self):
        agg = AverageScore(num_edges=2)
        assert agg.combine([1.0, 0.0]) == pytest.approx(0.5)

    def test_average_requires_exact_arity(self):
        agg = AverageScore(num_edges=2)
        with pytest.raises(ValueError):
            agg.combine([1.0])

    def test_average_rejects_non_positive_arity(self):
        with pytest.raises(ValueError):
            AverageScore(num_edges=0)

    def test_weighted_sum(self):
        agg = WeightedSum(weights=(2.0, 1.0))
        assert agg.combine([0.5, 1.0]) == pytest.approx(2.0)

    def test_weighted_sum_validation(self):
        with pytest.raises(ValueError):
            WeightedSum(weights=())
        with pytest.raises(ValueError):
            WeightedSum(weights=(1.0, -0.5))
        with pytest.raises(ValueError):
            WeightedSum(weights=(1.0,)).combine([0.5, 0.5])

    def test_min(self):
        assert MinScore().combine([0.9, 0.2, 0.5]) == pytest.approx(0.2)

    def test_bounds_are_combines(self):
        agg = AverageScore(num_edges=3)
        assert agg.upper_bound([1.0, 1.0, 0.5]) == pytest.approx(agg.combine([1.0, 1.0, 0.5]))
        assert agg.lower_bound([0.0, 0.2, 0.4]) == pytest.approx(agg.combine([0.0, 0.2, 0.4]))


class TestResidualThreshold:
    def test_average_residual(self):
        agg = AverageScore(num_edges=2)
        # Target 0.75 with the other edge at most 1.0: this edge needs >= 0.5.
        required = agg.residual_threshold(0.75, 0, {}, [1.0, 1.0])
        assert required == pytest.approx(0.5)

    def test_average_residual_with_known_score(self):
        agg = AverageScore(num_edges=2)
        required = agg.residual_threshold(0.75, 1, {0: 0.6}, [1.0, 1.0])
        assert required == pytest.approx(0.9)

    def test_sum_residual(self):
        agg = SumScore()
        required = agg.residual_threshold(1.4, 0, {1: 0.9}, [1.0, 1.0])
        assert required == pytest.approx(0.5)

    def test_weighted_residual(self):
        agg = WeightedSum(weights=(2.0, 1.0))
        required = agg.residual_threshold(1.5, 0, {}, [1.0, 1.0])
        assert required == pytest.approx(0.25)

    def test_weighted_residual_zero_weight(self):
        agg = WeightedSum(weights=(0.0, 1.0))
        assert agg.residual_threshold(0.5, 0, {}, [1.0, 1.0]) == 0.0
        assert agg.residual_threshold(2.0, 0, {}, [1.0, 1.0]) == float("inf")

    def test_min_residual(self):
        agg = MinScore()
        assert agg.residual_threshold(0.5, 0, {}, [1.0, 1.0]) == pytest.approx(0.5)
        assert agg.residual_threshold(0.5, 0, {1: 0.3}, [1.0, 1.0]) == float("inf")

    def test_residual_unreachable(self):
        agg = AverageScore(num_edges=2)
        # Even with this edge at 1.0 the target cannot be met.
        required = agg.residual_threshold(0.9, 0, {1: 0.1}, [1.0, 1.0])
        assert required > 1.0

    def test_residual_consistency_with_combine(self):
        """If the residual is r, then a score of exactly r reaches the target."""
        agg = AverageScore(num_edges=3)
        known = {1: 0.4}
        ubs = [1.0, 1.0, 0.7]
        target = 0.6
        required = agg.residual_threshold(target, 0, known, ubs)
        achieved = agg.combine([required, known[1], ubs[2]])
        assert achieved == pytest.approx(target)
