"""Smoke tests of the per-figure experiment drivers at miniature scale.

These do not validate the paper's shapes (the benchmarks do, at a larger scale);
they validate that every driver runs end to end, produces the expected columns and
internally-consistent rows, so a benchmark failure can only be about measured
values, never about broken plumbing.
"""

from repro.datagen import NetworkTraceConfig
from repro.experiments import (
    effect_of_k_synthetic,
    figure8_workload_distribution,
    figure9_topbuckets_strategies,
    figure10_granules,
    figure11_scalability,
    figure13_network_scalability,
    figure14_network_effect_k,
)

TINY_NETWORK = NetworkTraceConfig(num_sessions=150, num_clients=20, num_servers=5)


class TestSyntheticDrivers:
    def test_figure8_driver(self):
        table = figure8_workload_distribution(
            sizes=(60,), queries=("Qb,b", "Qo,o"), k=10, num_granules=4, num_reducers=3
        )
        assert len(table.rows) == 4  # 1 size x 2 queries x 2 assigners
        assert {row["assigner"] for row in table.rows} == {"DTB", "LPT"}
        assert all(row["join_seconds"] >= 0 for row in table.rows)

    def test_figure9_driver(self):
        table = figure9_topbuckets_strategies(
            num_vertices=(3,),
            families=("Qb*",),
            size=50,
            num_granules=3,
            k=10,
            strategies=("loose", "brute-force"),
        )
        assert len(table.rows) == 2
        by_strategy = {row["strategy"]: row for row in table.rows}
        assert by_strategy["loose"]["selected_combinations"] >= 1
        assert by_strategy["loose"]["total_seconds"] > 0

    def test_figure10_driver(self):
        table = figure10_granules(granules=(3, 6), queries=("Qo,m",), size=80, k=10)
        assert len(table.rows) == 2
        assert all(0.0 <= row["pruned_fraction"] <= 1.0 for row in table.rows)
        assert all(row["imbalance"] >= 1.0 for row in table.rows)

    def test_figure11_driver(self):
        table = figure11_scalability(sizes=(50,), queries=("Qb,b", "Qo,o"), k=5, num_granules=4)
        systems = {row["system"] for row in table.rows}
        assert systems == {"TKIJ-P1", "TKIJ-PB", "All-Matrix-PB", "RCCIS-PB"}
        # Every arm returns at most k results and a positive running time.
        assert all(row["results"] <= 5 for row in table.rows)
        assert all(row["total_seconds"] > 0 for row in table.rows)

    def test_effect_of_k_driver(self):
        table = effect_of_k_synthetic(ks=(5, 20), queries=("Qb,b",), size=60, num_granules=4)
        ks = table.column("k")
        assert ks == [5, 20]
        assert all(row["selected_combinations"] >= 1 for row in table.rows)


class TestNetworkDrivers:
    def test_figure13_driver(self):
        table = figure13_network_scalability(
            fractions=(0.5, 1.0),
            queries=("Qb,b",),
            k=10,
            num_granules=4,
            config=TINY_NETWORK,
        )
        assert len(table.rows) == 2
        sizes = table.column("size")
        assert sizes[1] > sizes[0]

    def test_figure14_driver(self):
        table = figure14_network_effect_k(
            ks=(5, 20), queries=("Qb,b",), num_granules=4, config=TINY_NETWORK
        )
        assert [row["k"] for row in table.rows] == [5, 20]
        assert all(row["total_seconds"] > 0 for row in table.rows)
