"""Integration tests for crash-safe serving: supervisor, chaos proxy, recovery.

Everything here runs real worker *processes* (``python -m
repro.serving.worker``) under the real supervisor, and injures them with real
SIGKILLs and wire-level chaos — the point is that the recovery paths hold
end-to-end, with answers ``==`` a fault-free library run.
"""

import threading
import time
from pathlib import Path

import pytest

from repro.datagen.synthetic import SyntheticConfig, generate_uniform_collection
from repro.experiments.workloads import build_query
from repro.plan import ExecutionContext, get_algorithm
from repro.serving import (
    BackgroundServer,
    ChaosPlan,
    ChaosProxy,
    QueryClient,
    QueryServer,
    RetryPolicy,
    ServerSupervisor,
    ServingError,
)
from repro.serving.protocol import encode_intervals, encode_results

SIZE = 150
NAMES = ("R", "S", "T")


def make_collections(size=SIZE, names=NAMES, seed=7):
    return [
        generate_uniform_collection(name, SyntheticConfig(size=size), seed=seed + offset)
        for offset, name in enumerate(names)
    ]


def library_results(size=SIZE, k=10, query_name="Qo,m"):
    """The fault-free reference answer, JSON-normalised like the wire."""
    import json

    with ExecutionContext() as ctx:
        query = build_query(query_name, make_collections(size=size), "P1", k)
        report = get_algorithm("tkij").run(query, ctx)
    return json.loads(json.dumps(encode_results(report.results)))


def fast_retry(seed=0, attempts=12):
    return RetryPolicy(max_attempts=attempts, base_delay=0.05, max_delay=0.5, seed=seed)


def start_supervisor(**overrides):
    """A running supervisor on a background thread plus its frontend address."""
    options = dict(
        num_workers=2,
        drain_timeout=10.0,
        heartbeat_interval=0.1,
        restart_base=0.05,
        restart_cap=0.5,
    )
    options.update(overrides)
    supervisor = ServerSupervisor(**options)
    background = BackgroundServer(supervisor)
    address = background.start()
    return supervisor, background, address


def affinity_pair(supervisor):
    """Two affinity tokens that route to two different workers."""
    first = "session-a"
    target = supervisor.worker_for(first)
    for i in range(64):
        other = f"session-b{i}"
        if supervisor.worker_for(other) is not target:
            return first, other
    raise AssertionError("could not find a second affinity bucket")


class TestSupervisedServing:
    def test_affinity_pins_a_session_to_one_worker(self):
        supervisor, background, address = start_supervisor()
        try:
            first, other = affinity_pair(supervisor)
            with QueryClient(*address, affinity=first) as client:
                client.register("R", [[1, 0.0, 1.0]])
                names = [c["name"] for c in client.collections()["collections"]]
                assert names == ["R"]
            # A reconnect with the same token lands on the same worker...
            with QueryClient(*address, affinity=first) as client:
                assert [c["name"] for c in client.collections()["collections"]] == ["R"]
            # ...and a different bucket sees a different worker's (empty) state.
            with QueryClient(*address, affinity=other) as client:
                assert client.collections()["collections"] == []
            # Worker ids are reported by health and differ per bucket.
            with QueryClient(*address, affinity=first) as a, QueryClient(
                *address, affinity=other
            ) as b:
                assert a.health()["worker"] != b.health()["worker"]
        finally:
            background.stop()

    def test_sigkill_mid_query_under_load_recovers_with_parity(self):
        expected = library_results()
        supervisor, background, address = start_supervisor()
        try:
            affinity = "load-session"
            with QueryClient(*address, affinity=affinity) as setup:
                for collection in make_collections():
                    setup.register(collection.name, encode_intervals(collection.intervals))

            responses = []
            errors = []
            lock = threading.Lock()

            def run_queries(seed):
                try:
                    with QueryClient(
                        *address, retry=fast_retry(seed=seed), affinity=affinity
                    ) as client:
                        for _ in range(3):
                            response = client.query("Qo,m", list(NAMES), k=10)
                            with lock:
                                responses.append(response["results"])
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=run_queries, args=(seed,)) for seed in range(3)
            ]
            for thread in threads:
                thread.start()
            # SIGKILL the session's worker while queries are in flight.
            time.sleep(0.3)
            handle = supervisor.worker_for(affinity)
            handle.process.kill()
            for thread in threads:
                thread.join(timeout=90)
            assert not errors
            assert len(responses) == 9
            for results in responses:
                assert results == expected
            assert supervisor.respawns >= 1
            assert supervisor.worker_for(affinity).state == "READY"
        finally:
            background.stop()

    def test_streaming_session_resumes_from_checkpoint_identically(self):
        full = make_collections()
        initial = [c.intervals[:100] for c in full]
        batch = [c.intervals[100:] for c in full]

        def run_sequence(client, kill_between=None):
            """register → query → ingest(seq) → query; optionally crash between."""
            outcomes = []
            for collection, first in zip(full, initial):
                client.register(collection.name, encode_intervals(first), streaming=True)
            outcomes.append(
                client.query(
                    "Qo,m",
                    list(NAMES),
                    k=10,
                    algorithm="tkij-streaming",
                    options={"stream_id": "resume-parity"},
                )
            )
            if kill_between is not None:
                kill_between()
            for seq, (collection, appended) in enumerate(zip(full, batch), start=1):
                client.ingest(collection.name, encode_intervals(appended), seq=seq)
            outcomes.append(
                client.query(
                    "Qo,m",
                    list(NAMES),
                    k=10,
                    algorithm="tkij-streaming",
                    options={"stream_id": "resume-parity"},
                )
            )
            return outcomes

        # Fault-free reference run against a plain in-process server.
        reference_server = QueryServer()
        with BackgroundServer(reference_server) as (host, port):
            with QueryClient(host, port) as client:
                reference = run_sequence(client)

        # Chaotic run: the worker is SIGKILLed between the two evaluation
        # ticks; the respawned worker restores stream state from checkpoint.
        supervisor, background, address = start_supervisor()
        try:
            affinity = "stream-session"

            def crash():
                supervisor.worker_for(affinity).process.kill()

            with QueryClient(
                *address, retry=fast_retry(seed=5), affinity=affinity
            ) as client:
                resumed = run_sequence(client, kill_between=crash)
            assert supervisor.respawns >= 1
        finally:
            background.stop()

        for before, after in zip(reference, resumed):
            assert after["results"] == before["results"]
            assert after["metrics"] == before["metrics"]
            assert after["statistics_cached"] == before["statistics_cached"]

    def test_rolling_restart_drops_no_inflight_queries(self):
        expected = library_results()
        supervisor, background, address = start_supervisor()
        try:
            first, other = affinity_pair(supervisor)
            for affinity in (first, other):
                with QueryClient(*address, affinity=affinity) as setup:
                    for collection in make_collections():
                        setup.register(
                            collection.name, encode_intervals(collection.intervals)
                        )

            responses = []
            errors = []
            lock = threading.Lock()
            stop = threading.Event()

            def run_queries(affinity, seed):
                try:
                    with QueryClient(
                        *address, retry=fast_retry(seed=seed), affinity=affinity
                    ) as client:
                        while not stop.is_set():
                            response = client.query("Qo,m", list(NAMES), k=10)
                            with lock:
                                responses.append(response["results"])
                except Exception as error:  # noqa: BLE001 - surfaced below
                    errors.append(error)

            threads = [
                threading.Thread(target=run_queries, args=(affinity, seed))
                for seed, affinity in enumerate((first, other))
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            cycled = background.run_coroutine(supervisor.rolling_restart())
            stop.set()
            for thread in threads:
                thread.join(timeout=90)

            assert cycled == 2
            assert not errors
            assert responses, "load threads never completed a query"
            for results in responses:
                assert results == expected
            assert all(h.state == "READY" for h in supervisor.workers)
            assert all(h.restarts >= 1 for h in supervisor.workers)
        finally:
            background.stop()

    def test_crash_loop_trips_the_circuit_breaker(self):
        supervisor, background, address = start_supervisor(
            max_crashes=2, crash_window=60.0
        )
        try:
            first, other = affinity_pair(supervisor)
            doomed = supervisor.worker_for(first)
            deadline = time.monotonic() + 30
            while doomed.state != "FAILED":
                assert time.monotonic() < deadline, "breaker never tripped"
                if doomed.alive():
                    doomed.process.kill()
                time.sleep(0.05)
            # The failed bucket is UNAVAILABLE (retries exhausted)...
            with QueryClient(
                *address,
                retry=RetryPolicy(max_attempts=2, base_delay=0.01),
                affinity=first,
            ) as client:
                with pytest.raises(ServingError) as excinfo:
                    client.ping()
                assert excinfo.value.code == "UNAVAILABLE"
            # ...while the healthy worker keeps serving.
            with QueryClient(*address, affinity=other) as client:
                assert client.health()["status"] == "ok"
        finally:
            background.stop()

    def test_worker_drains_itself_when_its_supervisor_dies(self, tmp_path):
        # Spawn a worker from a short-lived intermediary process; when the
        # intermediary exits (a stand-in for a SIGKILLed supervisor), the
        # re-parented worker must notice and drain instead of lingering.
        import os
        import subprocess
        import sys as _sys

        port_file = tmp_path / "w.port"
        script = (
            "import os, subprocess, sys\n"
            "proc = subprocess.Popen([sys.executable, '-m', 'repro.serving.worker',"
            f" '--worker-id', '9', '--port-file', {str(port_file)!r},"
            " '--parent-pid', str(os.getpid())])\n"
            "print(proc.pid, flush=True)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [_sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=30,
        )
        worker_pid = int(out.stdout.strip())
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline:
            try:
                os.kill(worker_pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.1)
        else:
            os.kill(worker_pid, 9)
            raise AssertionError("orphaned worker never drained itself")

    def test_stop_leaves_no_workers_or_checkpoints_behind(self):
        supervisor, background, address = start_supervisor()
        checkpoint_dir = supervisor.checkpoint_dir
        with QueryClient(*address, affinity="tidy") as client:
            client.register("R", [[1, 0.0, 1.0]])
        background.stop()
        assert not any(handle.alive() for handle in supervisor.workers)
        assert not checkpoint_dir.exists()


class TestChaosProxy:
    def test_schedule_is_deterministic_and_seed_sensitive(self):
        plan = ChaosPlan(seed=4, drop_rate=0.2, truncate_rate=0.2, delay_rate=0.2)
        actions = [plan.action_for(c, f) for c in range(5) for f in range(20)]
        assert actions == [plan.action_for(c, f) for c in range(5) for f in range(20)]
        other = ChaosPlan(seed=5, drop_rate=0.2, truncate_rate=0.2, delay_rate=0.2)
        assert actions != [other.action_for(c, f) for c in range(5) for f in range(20)]
        assert {"drop", "truncate", "delay"} <= set(a for a in actions if a)

    def test_skip_frames_spares_the_handshake(self):
        plan = ChaosPlan(seed=0, drop_rate=1.0, skip_frames=2)
        assert plan.action_for(0, 0) is None
        assert plan.action_for(0, 1) is None
        assert plan.action_for(0, 2) == "drop"

    def test_rates_are_validated(self):
        with pytest.raises(ValueError):
            ChaosPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPlan(delay_seconds=-1.0)
        with pytest.raises(ValueError):
            ChaosPlan(skip_frames=-1)

    def test_soak_under_chaos_loses_nothing(self):
        expected = library_results()
        server = QueryServer()
        with BackgroundServer(server) as backend_address:
            plan = ChaosPlan(
                seed=3,
                drop_rate=0.15,
                truncate_rate=0.15,
                delay_rate=0.1,
                delay_seconds=0.01,
                skip_frames=1,
            )
            proxy = ChaosProxy(*backend_address, plan)
            proxy_background = BackgroundServer(proxy)
            proxied_address = proxy_background.start()
            try:
                # Setup over the clean address (register is not retryable).
                with QueryClient(*backend_address) as setup:
                    for collection in make_collections():
                        setup.register(
                            collection.name, encode_intervals(collection.intervals)
                        )
                with QueryClient(
                    *proxied_address, retry=fast_retry(seed=9, attempts=15)
                ) as client:
                    for _ in range(25):
                        assert client.query("Qo,m", list(NAMES), k=10)["results"] == expected
                    retries = client.retries
            finally:
                proxy_background.stop()
        # The chaos actually happened and the retry machinery absorbed it.
        assert proxy.stats["drops"] + proxy.stats["truncates"] > 0
        assert retries > 0
