"""Tests for workload assignment: DTB (Algorithms 3-4), LPT and round-robin."""

import pytest

from repro.core.bounds import BucketCombination
from repro.core.distribution import (
    ASSIGNERS,
    assign,
    distribute_top_buckets,
    lpt_assignment,
    round_robin_assignment,
)


def combo(idx, nb_res, ub, buckets=None):
    buckets = buckets or ((idx, idx), (idx + 1, idx + 1))
    return BucketCombination(
        vertices=("x1", "x2"),
        buckets=buckets,
        nb_res=nb_res,
        lower_bound=max(0.0, ub - 0.3),
        upper_bound=ub,
    )


@pytest.fixture()
def combinations():
    return [combo(i, nb_res=10 * (i + 1), ub=1.0 - 0.05 * i) for i in range(12)]


class TestDTB:
    def test_every_combination_assigned_once(self, combinations):
        assignment = distribute_top_buckets(combinations, num_reducers=4)
        assigned = [c for combos in assignment.combinations_per_reducer.values() for c in combos]
        assert len(assigned) == len(combinations)
        assert {c.key() for c in assigned} == {c.key() for c in combinations}

    def test_buckets_follow_combinations(self, combinations):
        assignment = distribute_top_buckets(combinations, num_reducers=4)
        for reducer, combos in assignment.combinations_per_reducer.items():
            for combination in combos:
                for item in combination.bucket_items():
                    assert item in assignment.buckets_per_reducer[reducer]

    def test_high_scoring_combinations_spread_evenly(self):
        """The first r combinations in UB order land on r distinct reducers."""
        combos = [combo(i, nb_res=5, ub=1.0 - 0.01 * i) for i in range(8)]
        assignment = distribute_top_buckets(combos, num_reducers=4)
        top4 = sorted(combos, key=lambda c: -c.upper_bound)[:4]
        reducers_of_top = set()
        for combination in top4:
            for reducer, assigned in assignment.combinations_per_reducer.items():
                if any(c.key() == combination.key() for c in assigned):
                    reducers_of_top.add(reducer)
        assert len(reducers_of_top) == 4

    def test_result_cap_respected_when_possible(self):
        combos = [combo(i, nb_res=10, ub=0.9) for i in range(20)]
        assignment = distribute_top_buckets(combos, num_reducers=4)
        loads = assignment.results_per_reducer()
        avg = sum(loads.values()) / 4
        assert max(loads.values()) <= 2 * avg + 10  # one combination of slack

    def test_single_huge_combination_does_not_fail(self):
        combos = [combo(0, nb_res=10**9, ub=1.0), combo(1, nb_res=1, ub=0.5)]
        assignment = distribute_top_buckets(combos, num_reducers=3)
        assert sum(len(c) for c in assignment.combinations_per_reducer.values()) == 2

    def test_tie_break_prefers_reducer_with_shared_buckets(self):
        shared_bucket = ((5, 5), (6, 6))
        combos = [
            combo(0, nb_res=1, ub=1.0, buckets=shared_bucket),
            combo(1, nb_res=1, ub=0.9),
            combo(2, nb_res=1, ub=0.8, buckets=shared_bucket),
        ]
        # With 1 reducer everything goes together; with 2 reducers the third combo is
        # assigned after each reducer has one combination, and the reducer already
        # holding the shared buckets needs less new input.
        assignment = distribute_top_buckets(combos, num_reducers=2)
        reducer_of_first = next(
            r for r, cs in assignment.combinations_per_reducer.items()
            if any(c.key() == combos[0].key() for c in cs)
        )
        reducer_of_third = next(
            r for r, cs in assignment.combinations_per_reducer.items()
            if any(c.key() == combos[2].key() for c in cs)
        )
        assert reducer_of_first == reducer_of_third

    def test_invalid_reducer_count(self, combinations):
        with pytest.raises(ValueError):
            distribute_top_buckets(combinations, num_reducers=0)


class TestLPT:
    def test_balances_result_counts(self):
        combos = [combo(i, nb_res=count, ub=0.5) for i, count in enumerate([50, 40, 30, 20, 10, 5])]
        assignment = lpt_assignment(combos, num_reducers=3)
        loads = assignment.results_per_reducer()
        assert max(loads.values()) <= 60
        assert sum(loads.values()) == sum(c.nb_res for c in combos)

    def test_ignores_scores(self):
        """LPT assigns the largest combination first regardless of its upper bound."""
        combos = [combo(0, nb_res=100, ub=0.1), combo(1, nb_res=1, ub=1.0)]
        assignment = lpt_assignment(combos, num_reducers=2)
        loads = assignment.results_per_reducer()
        assert sorted(loads.values()) == [1, 100]


class TestRoundRobinAndRegistry:
    def test_round_robin_cycles(self, combinations):
        assignment = round_robin_assignment(combinations, num_reducers=5)
        counts = [len(c) for c in assignment.combinations_per_reducer.values()]
        assert max(counts) - min(counts) <= 1

    def test_assign_dispatch(self, combinations):
        for name in ASSIGNERS:
            assignment = assign(name, combinations, num_reducers=3)
            assert sum(len(c) for c in assignment.combinations_per_reducer.values()) == len(
                combinations
            )
        with pytest.raises(ValueError):
            assign("unknown", combinations, num_reducers=3)


class TestWorkloadAssignmentMetrics:
    def test_reducers_of_bucket(self, combinations):
        assignment = distribute_top_buckets(combinations, num_reducers=4)
        vertex, bucket = combinations[0].bucket_items()[0]
        reducers = assignment.reducers_of_bucket(vertex, bucket)
        assert reducers, "the bucket of an assigned combination must reach some reducer"

    def test_replication_cost(self):
        combos = [
            combo(0, nb_res=4, ub=1.0, buckets=((0, 0), (1, 1))),
            combo(1, nb_res=4, ub=0.9, buckets=((0, 0), (2, 2))),
        ]
        assignment = distribute_top_buckets(combos, num_reducers=2)
        counts = {("x1", (0, 0)): 10, ("x2", (1, 1)): 5, ("x2", (2, 2)): 7}
        cost = assignment.replication_cost(counts)
        # Bucket (0,0) is used by both combinations; if they land on different
        # reducers it is counted twice.
        assert cost in (22, 32)

    def test_describe(self, combinations):
        assignment = distribute_top_buckets(combinations, num_reducers=4)
        summary = assignment.describe()
        assert summary["assigned_combinations"] == len(combinations)
        assert summary["max_results_per_reducer"] >= summary["avg_results_per_reducer"]
