"""Fault-tolerance tests: fault plans, retries, speculation, idempotent close.

The contract under test (DESIGN.md §9): as long as injected failures stay
within the per-task attempt budget, a chaotic run is observationally identical
to a fault-free one — outputs, counters, shuffle volumes — with the chaos
visible only in the separate ``JobMetrics.failed_attempts`` /
``speculative_*`` accounting; an exhausted budget raises a structured
:class:`TaskFailedError` carrying the attempt history.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.mapreduce import (
    ClusterConfig,
    FaultInjectingBackend,
    FaultPlan,
    FaultRule,
    GuardedTask,
    InjectedFault,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
    SerialBackend,
    TaskFailedError,
    TaskFailure,
    ThreadPoolBackend,
    create_backend,
    create_cluster_backend,
)
from repro.mapreduce.backends import MapTask
from repro.plan import ExecutionContext


class CountingMapper(Mapper):
    def map(self, key, value):
        for word in value.split():
            self.counters.increment("words_seen")
            yield word, 1


class SumReducer(Reducer):
    def reduce(self, key, values):
        yield key, sum(values)


class ExplodingMapper(Mapper):
    """A genuinely buggy mapper: raises on one specific record."""

    def map(self, key, value):
        if key == 3:
            raise RuntimeError("mapper bug on record 3")
        yield value, 1


def wordcount_job(num_reducers: int = 3) -> MapReduceJob:
    return MapReduceJob(
        name="wordcount",
        mapper_factory=CountingMapper,
        reducer_factory=SumReducer,
        num_reducers=num_reducers,
    )


def wordcount_input(num_docs: int = 12):
    corpus = ["alpha beta", "beta gamma delta", "gamma alpha"]
    return [(i, corpus[i % len(corpus)]) for i in range(num_docs)]


def run_job(cluster: ClusterConfig):
    with MapReduceEngine(cluster) as engine:
        return engine.run(wordcount_job(), wordcount_input())


REFERENCE = None


def reference_result():
    global REFERENCE
    if REFERENCE is None:
        REFERENCE = run_job(ClusterConfig(num_mappers=3))
    return REFERENCE


class TestFaultRule:
    def test_matching(self):
        rule = FaultRule(action="fail", job="tkij-*", phase="map", task=2, attempts=(0, 1))
        assert rule.matches("tkij-join", "map", 2, 0)
        assert rule.matches("tkij-join", "map", 2, 1)
        assert not rule.matches("tkij-join", "map", 2, 2)
        assert not rule.matches("tkij-join", "reduce", 2, 0)
        assert not rule.matches("tkij-join", "map", 1, 0)
        assert not rule.matches("wordcount", "map", 2, 0)

    def test_wildcards(self):
        rule = FaultRule(action="fail")
        assert rule.matches("anything", "map", 99, 0)
        assert rule.matches("anything", "reduce", 0, 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(action="explode")
        with pytest.raises(ValueError, match="unknown phase"):
            FaultRule(action="fail", phase="shuffle")
        with pytest.raises(ValueError, match="delay_seconds"):
            FaultRule(action="delay")
        with pytest.raises(ValueError, match="non-negative"):
            FaultRule(action="fail", attempts=(-1,))


class TestFaultPlan:
    def test_explicit_rule_first_match_wins(self):
        plan = FaultPlan(
            rules=(
                FaultRule(action="fail", phase="map", task=0),
                FaultRule(action="fail_after", phase="map"),
            )
        )
        assert plan.rule_for("j", "map", 0, 0).action == "fail"
        assert plan.rule_for("j", "map", 1, 0).action == "fail_after"
        assert plan.rule_for("j", "reduce", 0, 0) is None

    def test_seeded_draws_are_deterministic_and_order_free(self):
        plan = FaultPlan(seed=42, failure_rate=0.5, max_failures_per_task=2)
        keys = [("job", "map", task) for task in range(40)]
        first = [plan.rule_for(j, p, t, 0) is not None for j, p, t in keys]
        second = [plan.rule_for(j, p, t, 0) is not None for j, p, t in reversed(keys)]
        assert first == list(reversed(second))
        assert any(first) and not all(first)  # rate 0.5 hits some, not all

    def test_seeded_failures_respect_the_per_task_cap(self):
        plan = FaultPlan(seed=42, failure_rate=1.0, max_failures_per_task=2)
        assert plan.rule_for("j", "map", 0, 0) is not None
        assert plan.rule_for("j", "map", 0, 1) is not None
        assert plan.rule_for("j", "map", 0, 2) is None

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, failure_rate=0.5)
        b = FaultPlan(seed=2, failure_rate=0.5)
        decisions_a = [a.rule_for("j", "map", t, 0) is not None for t in range(64)]
        decisions_b = [b.rule_for("j", "map", t, 0) is not None for t in range(64)]
        assert decisions_a != decisions_b

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_rate"):
            FaultPlan(failure_rate=1.5)
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(failure_rate=0.5)
        with pytest.raises(ValueError, match="max_failures_per_task"):
            FaultPlan(seed=1, failure_rate=0.5, max_failures_per_task=0)

    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            rules=(
                FaultRule(action="delay", job="tkij-*", delay_seconds=0.5, delay_once=False),
                FaultRule(action="fail", phase="reduce", task=1, attempts=(0, 2)),
            ),
            seed=9,
            failure_rate=0.25,
            max_failures_per_task=2,
        )
        path = plan.dump(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan

    def test_load_rejects_bad_files(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            FaultPlan.load(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.load(garbled)
        wrong_shape = tmp_path / "shape.json"
        wrong_shape.write_text('{"rules": "nope"}')
        with pytest.raises(ValueError, match="list of rule objects"):
            FaultPlan.load(wrong_shape)
        bad_rule = tmp_path / "rule.json"
        bad_rule.write_text('{"rules": [{"action": "fail", "oops": 1}]}')
        with pytest.raises(ValueError, match="rule #0"):
            FaultPlan.load(bad_rule)
        unknown_key = tmp_path / "key.json"
        unknown_key.write_text('{"sseed": 3}')
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.load(unknown_key)


class TestRetries:
    def test_injected_failures_are_retried_with_identical_results(self):
        plan = FaultPlan(
            rules=(
                FaultRule(action="fail", phase="map", task=0, attempts=(0, 1)),
                FaultRule(action="fail_after", phase="reduce", task=1, attempts=(0,)),
            )
        )
        result = run_job(ClusterConfig(num_mappers=3, fault_plan=plan, max_task_attempts=4))
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.reducer_outputs == reference.reducer_outputs
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert result.metrics.shuffle_records == reference.metrics.shuffle_records
        assert result.metrics.shuffle_size == reference.metrics.shuffle_size
        # The chaos is visible only in the separate failure accounting.
        assert len(result.metrics.failed_attempts) == 3
        assert result.metrics.retried_tasks == 2
        assert reference.metrics.failed_attempts == []

    def test_winning_attempt_number_is_recorded(self):
        plan = FaultPlan(rules=(FaultRule(action="fail", phase="map", task=1, attempts=(0, 1)),))
        result = run_job(ClusterConfig(num_mappers=3, fault_plan=plan))
        assert [task.attempt for task in result.metrics.map_tasks] == [0, 2, 0]
        assert [task.task_id for task in result.metrics.map_tasks] == [0, 1, 2]

    def test_fail_after_discards_outputs_and_counters_exactly_once(self):
        # The attempt runs to completion (so its counters exist) but its
        # outputs and counters must not leak into the job.
        plan = FaultPlan(rules=(FaultRule(action="fail_after", phase="map", attempts=(0,)),))
        result = run_job(ClusterConfig(num_mappers=3, fault_plan=plan))
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.counters.as_dict() == reference.counters.as_dict()
        # Every map task lost its first attempt; the discarded counters are
        # preserved on the failure records for observability.
        assert len(result.metrics.failed_attempts) == 3
        discarded = sum(
            failure.counters.get("words_seen") for failure in result.metrics.failed_attempts
        )
        assert discarded == reference.counters.get("words_seen")

    def test_exhausted_budget_raises_structured_error(self):
        plan = FaultPlan(rules=(FaultRule(action="fail", phase="map", task=0, attempts=(0, 1, 2)),))
        engine = MapReduceEngine(ClusterConfig(num_mappers=3, fault_plan=plan, max_task_attempts=3))
        with pytest.raises(TaskFailedError) as excinfo:
            engine.run(wordcount_job(), wordcount_input())
        error = excinfo.value
        assert error.job_name == "wordcount"
        assert error.phase == "map"
        assert error.task_id == 0
        assert [failure.attempt for failure in error.attempts] == [0, 1, 2]
        assert all(failure.error_type == "InjectedFault" for failure in error.attempts)
        assert "failed 3 attempt(s)" in str(error)

    def test_user_exceptions_are_captured_and_retried_to_exhaustion(self):
        # A deterministic mapper bug fails every attempt: the engine must
        # surface it as TaskFailedError with the real error type, not hang.
        job = MapReduceJob(
            name="buggy",
            mapper_factory=ExplodingMapper,
            reducer_factory=SumReducer,
            num_reducers=2,
        )
        engine = MapReduceEngine(ClusterConfig(num_mappers=2, max_task_attempts=2))
        with pytest.raises(TaskFailedError) as excinfo:
            engine.run(job, [(i, f"w{i}") for i in range(6)])
        assert len(excinfo.value.attempts) == 2
        assert excinfo.value.attempts[0].error_type == "RuntimeError"
        assert "mapper bug on record 3" in excinfo.value.attempts[0].message

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_retries_on_pool_backends_match_serial(self, backend_name):
        plan = FaultPlan(seed=5, failure_rate=0.4, max_failures_per_task=2)
        chaotic = ClusterConfig(
            num_mappers=3,
            backend=backend_name,
            max_workers=2,
            fault_plan=plan,
            max_task_attempts=4,
        )
        result = run_job(chaotic)
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert len(result.metrics.failed_attempts) > 0
        # The seeded plan injects the same faults on every backend.
        serial = run_job(
            ClusterConfig(num_mappers=3, fault_plan=plan, max_task_attempts=4)
        )
        assert [
            (failure.phase, failure.task_id, failure.attempt)
            for failure in result.metrics.failed_attempts
        ] == [
            (failure.phase, failure.task_id, failure.attempt)
            for failure in serial.metrics.failed_attempts
        ]


class TestGuardedTask:
    def test_success_passes_through(self):
        task = MapTask(job=wordcount_job(), task_id=0, split=((0, "a b"),))
        outcome = GuardedTask(task=task, attempt=0)()
        assert outcome.outputs == [("a", 1), ("b", 1)]

    def test_attribute_passthrough(self):
        task = MapTask(job=wordcount_job(), task_id=7, split=())
        guarded = GuardedTask(task=task, attempt=2)
        assert guarded.task_id == 7
        assert guarded.phase == "map"
        assert guarded.job.name == "wordcount"
        assert guarded.attempt == 2
        with pytest.raises(AttributeError):
            guarded.partition  # noqa: B018 - map tasks have no partition

    def test_pickle_roundtrip(self):
        task = MapTask(job=wordcount_job(), task_id=1, split=((0, "x"),))
        guarded = pickle.loads(pickle.dumps(GuardedTask(task=task, attempt=1)))
        assert guarded.attempt == 1
        assert guarded().outputs == [("x", 1)]

    def test_injected_fault_raised_inside_a_task_is_captured(self):
        class Raises(Mapper):
            def map(self, key, value):
                raise InjectedFault("synthetic")
                yield  # pragma: no cover

        job = MapReduceJob(name="j", mapper_factory=Raises, reducer_factory=SumReducer)
        outcome = GuardedTask(task=MapTask(job=job, task_id=0, split=((0, "x"),)), attempt=3)()
        assert isinstance(outcome, TaskFailure)
        assert outcome.error_type == "InjectedFault"
        assert outcome.attempt == 3
        assert outcome.phase == "map"


class TestSpeculation:
    def test_backup_beats_a_delayed_straggler_on_threads(self):
        # Task 0's first launch sleeps 0.6s; with three workers the other
        # tasks finish fast, the watcher launches a backup (which skips the
        # fire-once delay) and the job completes well before the straggler.
        plan = FaultPlan(
            rules=(FaultRule(action="delay", phase="map", task=0, delay_seconds=0.6),)
        )
        cluster = ClusterConfig(
            num_mappers=4,
            backend="thread",
            max_workers=3,
            fault_plan=plan,
            speculative_slowdown=3.0,
        )
        engine = MapReduceEngine(cluster)
        started = time.perf_counter()
        result = engine.run(wordcount_job(), wordcount_input())
        elapsed = time.perf_counter() - started
        engine.close()
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.counters.as_dict() == reference.counters.as_dict()
        assert result.metrics.speculative_launches >= 1
        assert result.metrics.speculative_wins >= 1
        assert elapsed < 0.55, f"speculation should beat the 0.6s straggler, took {elapsed:.2f}s"

    def test_speculation_on_processes_preserves_results(self):
        # The pickled duplicate re-fires the injected delay, so the backup
        # rarely wins here — but results and counters must stay identical.
        plan = FaultPlan(
            rules=(FaultRule(action="delay", phase="map", task=0, delay_seconds=0.3),)
        )
        cluster = ClusterConfig(
            num_mappers=4,
            backend="process",
            max_workers=2,
            fault_plan=plan,
            speculative_slowdown=3.0,
        )
        with MapReduceEngine(cluster) as engine:
            result = engine.run(wordcount_job(), wordcount_input())
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.counters.as_dict() == reference.counters.as_dict()

    def test_speculation_without_stragglers_changes_nothing(self):
        cluster = ClusterConfig(
            num_mappers=3, backend="thread", max_workers=2, speculative_slowdown=50.0
        )
        with MapReduceEngine(cluster) as engine:
            result = engine.run(wordcount_job(), wordcount_input())
        reference = reference_result()
        assert result.outputs == reference.outputs
        assert result.counters.as_dict() == reference.counters.as_dict()

    def test_failed_attempts_do_not_poison_the_straggler_median(self):
        # An injected "fail" settles near-instantly; if its duration entered
        # the median, every healthy 0.1s task would look like a straggler and
        # get a pointless duplicate launch.
        class SleepyMapper(Mapper):
            def map(self, key, value):
                time.sleep(0.1)
                yield value, 1

        plan = FaultPlan(rules=(FaultRule(action="fail", phase="map", task=0, attempts=(0,)),))
        job = MapReduceJob(
            name="sleepy",
            mapper_factory=SleepyMapper,
            reducer_factory=SumReducer,
            num_reducers=2,
        )
        cluster = ClusterConfig(
            num_mappers=4,
            num_reducers=2,
            backend="thread",
            max_workers=4,
            fault_plan=plan,
            speculative_slowdown=3.0,
        )
        with MapReduceEngine(cluster) as engine:
            result = engine.run(job, [(i, f"w{i}") for i in range(4)])
        assert len(result.metrics.failed_attempts) == 1
        assert result.metrics.speculative_launches == 0

    def test_invalid_slowdown_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(speculative_slowdown=0.9)
        with pytest.raises(ValueError):
            create_backend("thread", speculative_slowdown=1.0)


class TestFaultInjectingBackend:
    def test_delegates_pickling_contract_and_counts_injections(self):
        plan = FaultPlan(rules=(FaultRule(action="fail", phase="map", task=0, attempts=(0,)),))
        backend = FaultInjectingBackend(SerialBackend(), plan)
        assert backend.requires_pickling is False
        engine = MapReduceEngine(ClusterConfig(num_mappers=3), backend=backend)
        result = engine.run(wordcount_job(), wordcount_input())
        assert backend.injected_faults == 1
        assert result.outputs == reference_result().outputs

    def test_cluster_config_builds_the_wrapped_backend(self):
        plan = FaultPlan(rules=(FaultRule(action="fail", task=0, attempts=(0,)),))
        backend = create_cluster_backend(ClusterConfig(fault_plan=plan))
        assert isinstance(backend, FaultInjectingBackend)
        assert isinstance(backend.inner, SerialBackend)
        backend.close()

    def test_rejects_non_plan(self):
        with pytest.raises(ValueError, match="fault_plan"):
            ClusterConfig(fault_plan="not-a-plan")


class TestIdempotentClose:
    """Regression tests: close() is safe to repeat and safe after failures."""

    def test_engine_double_close(self):
        engine = MapReduceEngine(ClusterConfig(backend="thread", max_workers=2))
        engine.run(wordcount_job(), wordcount_input(4))
        engine.close()
        engine.close()  # must not raise

    def test_engine_close_after_failed_job(self):
        plan = FaultPlan(rules=(FaultRule(action="fail", attempts=(0,)),))
        engine = MapReduceEngine(
            ClusterConfig(backend="thread", max_workers=2, fault_plan=plan, max_task_attempts=1)
        )
        with pytest.raises(TaskFailedError):
            engine.run(wordcount_job(), wordcount_input(4))
        engine.close()
        engine.close()

    def test_engine_context_manager_then_explicit_close(self):
        with MapReduceEngine(ClusterConfig(backend="thread", max_workers=2)) as engine:
            engine.run(wordcount_job(), wordcount_input(4))
        engine.close()  # __exit__ already closed once

    def test_engine_stays_usable_after_close(self):
        engine = MapReduceEngine(ClusterConfig(backend="thread", max_workers=2))
        first = engine.run(wordcount_job(), wordcount_input(4))
        engine.close()
        second = engine.run(wordcount_job(), wordcount_input(4))
        engine.close()
        assert first.outputs == second.outputs

    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    def test_backend_double_close_and_reuse(self, backend_name):
        backend = create_backend(backend_name, max_workers=2)
        backend.close()
        backend.close()
        engine = MapReduceEngine(ClusterConfig(num_mappers=2), backend=backend)
        result = engine.run(wordcount_job(), wordcount_input(4))
        assert result.outputs
        backend.close()
        backend.close()

    def test_fault_backend_close_is_idempotent_and_closes_inner(self):
        inner = ThreadPoolBackend(max_workers=2)
        backend = FaultInjectingBackend(inner, FaultPlan())
        engine = MapReduceEngine(ClusterConfig(num_mappers=2), backend=backend)
        engine.run(wordcount_job(), wordcount_input(4))
        backend.close()
        backend.close()
        assert inner._executor is None

    def test_injected_backend_not_closed_by_engine(self):
        backend = ThreadPoolBackend(max_workers=2)
        engine = MapReduceEngine(ClusterConfig(num_mappers=2), backend=backend)
        engine.run(wordcount_job(), wordcount_input(4))
        engine.close()
        assert backend._executor is not None  # caller still owns the pool
        backend.close()

    def test_execution_context_double_close(self):
        context = ExecutionContext(cluster=ClusterConfig(backend="thread", max_workers=2))
        context.get_backend()
        context.close()
        context.close()
        with ExecutionContext() as inner_context:
            inner_context.get_backend()
        inner_context.close()
