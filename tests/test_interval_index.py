"""Tests for score-threshold lookups (threshold boxes and the ThresholdIndex)."""

import numpy as np
import pytest

from repro.index import (
    CompiledPredicateQuery,
    ThresholdIndex,
    threshold_box,
    threshold_difference_range,
)
from repro.temporal import ComparatorParams, Interval, PredicateParams
from repro.temporal.predicates import before, meets, overlaps, sparks, starts

P1 = PredicateParams.of(4, 16, 0, 10)


def make_intervals(n, seed=0, span=2000.0):
    rng = np.random.default_rng(seed)
    starts_arr = rng.uniform(0, span, n)
    lengths = rng.uniform(1, 60, n)
    return [
        Interval(i, float(s), float(s + l)) for i, (s, l) in enumerate(zip(starts_arr, lengths))
    ]


class TestThresholdDifferenceRange:
    def test_no_constraint_for_zero_threshold(self):
        lo, hi = threshold_difference_range("equals", ComparatorParams(4, 16), 0.0)
        assert lo == float("-inf") and hi == float("inf")

    def test_unsatisfiable_threshold(self):
        lo, hi = threshold_difference_range("equals", ComparatorParams(4, 16), 1.5)
        assert lo > hi

    def test_equals_range_shrinks_with_threshold(self):
        params = ComparatorParams(4, 16)
        lo_half, hi_half = threshold_difference_range("equals", params, 0.5)
        lo_one, hi_one = threshold_difference_range("equals", params, 1.0)
        assert hi_one == pytest.approx(4.0)
        assert hi_half == pytest.approx(4 + 16 * 0.5)
        assert hi_one < hi_half

    def test_greater_range(self):
        params = ComparatorParams(0, 10)
        lo, hi = threshold_difference_range("greater", params, 0.5)
        assert lo == pytest.approx(5.0)
        assert hi == float("inf")

    def test_greater_boolean(self):
        params = ComparatorParams(0, 0)
        lo, _ = threshold_difference_range("greater", params, 1.0)
        assert lo == 0.0

    def test_threshold_semantics_match_scores(self):
        """d is inside the returned range iff the comparator score at d reaches the threshold."""
        from repro.temporal import equals_score, greater_score

        params = ComparatorParams(3, 9)
        for threshold in (0.2, 0.5, 0.8, 1.0):
            lo_eq, hi_eq = threshold_difference_range("equals", params, threshold)
            lo_gt, _ = threshold_difference_range("greater", params, threshold)
            for d in np.linspace(-30, 30, 121):
                in_eq = lo_eq <= d <= hi_eq
                assert in_eq == (equals_score(d, 0.0, params) >= threshold - 1e-12)
                in_gt = d >= lo_gt
                assert in_gt == (greater_score(d, 0.0, params) >= threshold - 1e-12)


class TestThresholdBox:
    def test_meets_box_is_exact_superset(self):
        predicate = meets(P1)
        fixed = Interval(0, 100.0, 150.0)
        pool = make_intervals(400, seed=1, span=400.0)
        for threshold in (0.25, 0.5, 1.0):
            box = threshold_box(predicate, "x", fixed, "y", threshold)
            assert box is not None
            qualifying = {y.uid for y in pool if predicate.score(fixed, y) >= threshold}
            inside = {y.uid for y in pool if box.contains_point(y.start, y.end)}
            assert qualifying <= inside

    def test_box_none_when_unreachable(self):
        predicate = meets(P1)
        assert threshold_box(predicate, "x", Interval(0, 0, 10), "y", 1.5) is None

    def test_sparks_length_conjunct_not_boxed_but_superset(self):
        predicate = sparks(P1)
        fixed = Interval(0, 10.0, 12.0)
        pool = make_intervals(300, seed=2, span=200.0)
        box = threshold_box(predicate, "x", fixed, "y", 0.5)
        assert box is not None
        qualifying = {y.uid for y in pool if predicate.score(fixed, y) >= 0.5}
        inside = {y.uid for y in pool if box.contains_point(y.start, y.end)}
        assert qualifying <= inside

    def test_compiled_query_matches_function(self):
        predicate = overlaps(P1).rename("a", "b")
        compiled = CompiledPredicateQuery(predicate, "a", "b")
        fixed = Interval(0, 50.0, 120.0)
        box_a = compiled.box(fixed, 0.5)
        box_b = threshold_box(predicate, "a", fixed, "b", 0.5)
        assert box_a == box_b

    def test_compiled_query_rejects_unknown_variable(self):
        predicate = overlaps(P1).rename("a", "b")
        with pytest.raises(ValueError):
            CompiledPredicateQuery(predicate, "a", "c")


class TestThresholdIndex:
    def test_candidates_superset_and_exact(self):
        pool = make_intervals(500, seed=5, span=1000.0)
        index = ThresholdIndex.build(pool)
        predicate = starts(P1).rename("x", "y")
        fixed = Interval(0, 200.0, 300.0)
        threshold = 0.5
        exact_truth = {
            y.uid
            for y in pool
            if min(c.score({"x": fixed, "y": y}, predicate.params) for c in predicate.comparisons)
            >= threshold
        }
        superset = {y.uid for y in index.candidates(predicate, "x", fixed, "y", threshold)}
        exact = {
            y.uid
            for y in index.candidates(predicate, "x", fixed, "y", threshold, exact=True)
        }
        assert exact_truth <= superset
        assert exact == exact_truth

    def test_candidates_compiled_matches_plain(self):
        pool = make_intervals(300, seed=6)
        index = ThresholdIndex.build(pool)
        predicate = before(P1).rename("x", "y")
        compiled = CompiledPredicateQuery(predicate, "x", "y")
        fixed = Interval(0, 100.0, 160.0)
        plain = {y.uid for y in index.candidates(predicate, "x", fixed, "y", 0.7)}
        fast = {y.uid for y in index.candidates_compiled(compiled, fixed, 0.7)}
        assert plain == fast

    def test_zero_threshold_returns_everything(self):
        pool = make_intervals(100, seed=7)
        index = ThresholdIndex.build(pool)
        predicate = meets(P1).rename("x", "y")
        result = index.candidates(predicate, "x", Interval(0, 0, 1), "y", 0.0)
        assert len(result) == 100

    def test_len_and_all(self):
        pool = make_intervals(64, seed=8)
        index = ThresholdIndex.build(pool)
        assert len(index) == 64
        assert len(index.all()) == 64
