"""Tests for the per-reducer local top-k join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import naive_top_k
from repro.columnar import IntervalColumns, box_mask, sweep_positions
from repro.core import (
    KERNELS,
    TKIJ,
    CombinationSpace,
    LocalJoinConfig,
    LocalTopKJoin,
    TopBucketsSelector,
    collect_statistics,
)
from repro.index import Rect
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.streaming.parity import equivalent_top_k
from repro.temporal import PredicateParams

P1 = PredicateParams.of(4, 16, 0, 10)
P2 = PredicateParams.of(0, 16, 2, 8)


def _prepare(query, num_granules=4, strategy="loose"):
    """Statistics, selected combinations and the full bucket->intervals mapping."""
    collections = {query.collections[v].name: query.collections[v] for v in query.vertices}
    statistics = collect_statistics(collections, num_granules=num_granules)
    space = CombinationSpace(query, statistics)
    result = TopBucketsSelector(strategy=strategy).run(query, statistics, space)
    intervals = {}
    for vertex in query.vertices:
        collection = query.collections[vertex]
        matrix = statistics.matrix(collection.name)
        for interval in collection:
            key = (vertex, matrix.granularity.bucket_of(interval))
            intervals.setdefault(key, []).append(interval)
    return statistics, result.selected, intervals


class TestLocalJoinCorrectness:
    @pytest.mark.parametrize("query_name", ["Qs,m", "Qb,b", "Qo,o", "Qo,m"])
    def test_single_worker_matches_naive(self, tiny_collections, query_name):
        """With all combinations and all data, the local join is an exact evaluator."""
        query = build_query(query_name, tiny_collections, P1, k=8)
        _, selected, intervals = _prepare(query)
        join = LocalTopKJoin(query)
        results, stats = join.run(selected, intervals)
        expected = naive_top_k(query)
        assert [round(r.score, 9) for r in results] == [round(r.score, 9) for r in expected]
        assert stats.tuples_scored > 0

    def test_binary_query(self, pair_collections):
        query = build_query("Qb,b", [pair_collections[0], pair_collections[1], pair_collections[0]], P1, k=5)
        _, selected, intervals = _prepare(query)
        results, _ = LocalTopKJoin(query).run(selected, intervals)
        assert len(results) == 5
        assert all(results[i].score >= results[i + 1].score for i in range(len(results) - 1))

    def test_results_sorted_descending(self, tiny_collections):
        query = build_query("Qo,o", tiny_collections, P2, k=12)
        _, selected, intervals = _prepare(query)
        results, _ = LocalTopKJoin(query).run(selected, intervals)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_result_count(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, P1, k=10)
        _, selected, intervals = _prepare(query)
        results, _ = LocalTopKJoin(query).run(selected, intervals, k=10**7)
        total = len(tiny_collections[0]) * len(tiny_collections[1]) * len(tiny_collections[2])
        assert len(results) <= total


class TestLocalJoinConfigurations:
    @pytest.mark.parametrize(
        "config",
        [
            LocalJoinConfig(use_index=False, early_termination=False),
            LocalJoinConfig(use_index=False, early_termination=True),
            LocalJoinConfig(use_index=True, early_termination=False),
            LocalJoinConfig(use_index=True, early_termination=True),
        ],
    )
    def test_flags_do_not_change_results(self, tiny_collections, config):
        query = build_query("Qs,m", tiny_collections, P1, k=6)
        _, selected, intervals = _prepare(query)
        baseline, _ = LocalTopKJoin(query, LocalJoinConfig(use_index=False, early_termination=False)).run(
            selected, intervals
        )
        results, _ = LocalTopKJoin(query, config).run(selected, intervals)
        assert [round(r.score, 9) for r in results] == [round(r.score, 9) for r in baseline]

    def test_early_termination_skips_combinations(self, tiny_collections):
        query = build_query("Qb,b", tiny_collections, P1, k=3)
        _, selected, intervals = _prepare(query)
        eager = LocalTopKJoin(query, LocalJoinConfig(early_termination=True))
        lazy = LocalTopKJoin(query, LocalJoinConfig(early_termination=False))
        _, eager_stats = eager.run(selected, intervals)
        _, lazy_stats = lazy.run(selected, intervals)
        assert eager_stats.combinations_processed <= lazy_stats.combinations_processed
        assert eager_stats.tuples_scored <= lazy_stats.tuples_scored

    def test_index_reduces_candidates(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, P1, k=3)
        _, selected, intervals = _prepare(query)
        with_index, idx_stats = LocalTopKJoin(
            query, LocalJoinConfig(use_index=True)
        ).run(selected, intervals)
        without_index, raw_stats = LocalTopKJoin(
            query, LocalJoinConfig(use_index=False)
        ).run(selected, intervals)
        assert [r.score for r in with_index] == [r.score for r in without_index]
        assert idx_stats.candidates_examined <= raw_stats.candidates_examined

    def test_missing_bucket_data_is_skipped(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, P1, k=3)
        _, selected, intervals = _prepare(query)
        # Drop the data of one vertex entirely: combinations referencing it produce nothing.
        partial = {key: value for key, value in intervals.items() if key[0] != "x2"}
        results, stats = LocalTopKJoin(query).run(selected, partial)
        assert results == []

    def test_stats_merge(self):
        from repro.core import LocalJoinStats

        a = LocalJoinStats(1, 2, 3, 4)
        b = LocalJoinStats(10, 20, 30, 40)
        a.merge(b)
        assert (a.combinations_processed, a.combinations_skipped) == (11, 22)
        assert (a.candidates_examined, a.tuples_scored) == (33, 44)


def _stats_tuple(stats):
    return (
        stats.combinations_processed,
        stats.combinations_skipped,
        stats.candidates_examined,
        stats.tuples_scored,
    )


class TestKernelParity:
    """Scalar vs vector vs sweep kernel: tie-aware-identical top-k, identical counters.

    Parity is exact by construction (same candidate order, same pruning
    thresholds, bit-identical kernel floats), so the counters are compared
    with ``==`` — any drift is a real bug, not noise.
    """

    @pytest.mark.parametrize("query_name", ["Qs,m", "Qb,b", "Qo,o", "Qo,m"])
    @pytest.mark.parametrize("use_index", [True, False])
    @pytest.mark.parametrize("early_termination", [True, False])
    def test_local_join_kernels_agree(
        self, tiny_collections, query_name, use_index, early_termination
    ):
        query = build_query(query_name, tiny_collections, P1, k=8)
        _, selected, intervals = _prepare(query)
        outcomes = {}
        for kernel in KERNELS:
            outcomes[kernel] = LocalTopKJoin(
                query,
                LocalJoinConfig(
                    use_index=use_index,
                    early_termination=early_termination,
                    kernel=kernel,
                ),
            ).run(selected, intervals)
        scalar_results, scalar_stats = outcomes["scalar"]
        for kernel in ("vector", "sweep"):
            results, stats = outcomes[kernel]
            assert equivalent_top_k(scalar_results, results), kernel
            assert _stats_tuple(scalar_stats) == _stats_tuple(stats), kernel

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("early_termination", [True, False])
    def test_tkij_kernels_agree_across_backends(
        self, tiny_collections, backend, early_termination
    ):
        """The kernel × backend matrix: every cell matches the serial scalar run."""
        reports = {}
        for kernel in KERNELS:
            query = build_query("Qo,m", tiny_collections, P1, k=10)
            with TKIJ(
                num_granules=4,
                cluster=ClusterConfig(backend=backend, max_workers=2),
                join_config=LocalJoinConfig(
                    early_termination=early_termination, kernel=kernel
                ),
            ) as evaluator:
                reports[kernel] = evaluator.execute(query)
        scalar = reports["scalar"]
        for kernel in ("vector", "sweep"):
            report = reports[kernel]
            assert equivalent_top_k(scalar.results, report.results), kernel
            assert _stats_tuple(scalar.local_join_stats) == _stats_tuple(
                report.local_join_stats
            ), kernel
            # The columnar mapper ships batches but accounts shuffled intervals.
            assert scalar.join_metrics.counters.get(
                "join.intervals_shuffled"
            ) == report.join_metrics.counters.get("join.intervals_shuffled"), kernel
        # And the answer is the true one.
        expected = naive_top_k(build_query("Qo,m", tiny_collections, P1, k=10))
        assert equivalent_top_k(reports["sweep"].results, expected)

    @pytest.mark.parametrize("kernel", ["vector", "sweep"])
    def test_initial_threshold_respected_by_columnar_kernels(
        self, tiny_collections, kernel
    ):
        """Seeding the floor prunes identically in every kernel (streaming path)."""
        query = build_query("Qb,b", tiny_collections, P1, k=5)
        _, selected, intervals = _prepare(query)
        floor = 0.6
        scalar_results, scalar_stats = LocalTopKJoin(
            query, LocalJoinConfig(kernel="scalar")
        ).run(selected, intervals, initial_threshold=floor)
        results, stats = LocalTopKJoin(
            query, LocalJoinConfig(kernel=kernel)
        ).run(selected, intervals, initial_threshold=floor)
        assert equivalent_top_k(scalar_results, results)
        assert _stats_tuple(scalar_stats) == _stats_tuple(stats)
        assert all(result.score > floor for result in results)


class TestSweepWindows:
    """The sweep kernel's searchsorted windows == brute-force box-mask scans."""

    @given(
        endpoints=st.lists(
            st.tuples(
                st.integers(min_value=-20, max_value=20),
                st.integers(min_value=0, max_value=12),
            ),
            min_size=0,
            max_size=60,
        ),
        box_edges=st.tuples(
            st.floats(min_value=-25.0, max_value=25.0),
            st.floats(min_value=-25.0, max_value=25.0),
            st.floats(min_value=-25.0, max_value=35.0),
            st.floats(min_value=-25.0, max_value=35.0),
        ),
    )
    @settings(deadline=None, max_examples=200)
    def test_sweep_positions_match_box_mask(self, endpoints, box_edges):
        """Same candidate positions, same (insertion) order — incl. duplicates."""
        starts = np.array([float(start) for start, _ in endpoints])
        ends = np.array([float(start + length) for start, length in endpoints])
        columns = IntervalColumns(np.arange(len(endpoints)), starts, ends)
        x_lo, x_hi = sorted(box_edges[:2])
        y_lo, y_hi = sorted(box_edges[2:])
        box = Rect(x_lo, x_hi, y_lo, y_hi)
        expected = np.flatnonzero(box_mask(box, columns.starts, columns.ends))
        assert np.array_equal(sweep_positions(box, columns), expected)

    def test_unbounded_and_empty_boxes(self):
        columns = IntervalColumns(
            np.arange(4),
            np.array([0.0, 1.0, 1.0, 3.0]),
            np.array([2.0, 2.0, 5.0, 9.0]),
        )
        inf = float("inf")
        everything = Rect(-inf, inf, -inf, inf)
        assert np.array_equal(sweep_positions(everything, columns), np.arange(4))
        nothing = Rect(10.0, 20.0, -inf, inf)
        assert len(sweep_positions(nothing, columns)) == 0
