"""Shared fixtures: small deterministic collections and queries used across tests."""

from __future__ import annotations

import pytest

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import PARAMETERS, build_query
from repro.temporal import Interval, IntervalCollection, PredicateParams


@pytest.fixture(scope="session")
def p1() -> PredicateParams:
    """The paper's P1 parameter set."""
    return PARAMETERS["P1"]


@pytest.fixture(scope="session")
def pb() -> PredicateParams:
    """The Boolean parameter set PB."""
    return PARAMETERS["PB"]


@pytest.fixture(scope="session")
def tiny_collections() -> list[IntervalCollection]:
    """Three tiny dense collections (40 intervals each) for oracle comparisons."""
    config = SyntheticConfig(size=40, start_max=800.0, length_max=60.0)
    return list(generate_collections(3, config, seed=101).values())


@pytest.fixture(scope="session")
def small_collections() -> list[IntervalCollection]:
    """Three small collections (150 intervals each) for pipeline tests."""
    config = SyntheticConfig(size=150, start_max=5_000.0)
    return list(generate_collections(3, config, seed=202).values())


@pytest.fixture(scope="session")
def pair_collections() -> list[IntervalCollection]:
    """Two small dense collections for binary-query tests."""
    config = SyntheticConfig(size=80, start_max=1_500.0)
    return list(generate_collections(2, config, seed=303).values())


@pytest.fixture()
def handmade_collection() -> IntervalCollection:
    """A handmade collection with known, easy-to-reason-about intervals."""
    return IntervalCollection(
        "handmade",
        [
            Interval(0, 0.0, 10.0),
            Interval(1, 10.0, 20.0),
            Interval(2, 12.0, 30.0),
            Interval(3, 25.0, 40.0),
            Interval(4, 40.0, 41.0),
        ],
    )


@pytest.fixture()
def qsm_query(tiny_collections, p1):
    """The Qs,m query (starts, meets) over the tiny collections, k=10."""
    return build_query("Qs,m", tiny_collections, p1, k=10)


@pytest.fixture()
def qbb_query(tiny_collections, p1):
    """The Qb,b query (before, before) over the tiny collections, k=10."""
    return build_query("Qb,b", tiny_collections, p1, k=10)
