"""Property-based tests (hypothesis) for the core invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core import collect_statistics, get_top_buckets, merge_top_k, update_statistics
from repro.core.bounds import BucketCombination
from repro.core.distribution import distribute_top_buckets
from repro.core.statistics import Granularity, bucket_counts
from repro.core.top_buckets import validate_selection
from repro.index import Rect, RTree, threshold_difference_range
from repro.query.graph import ResultTuple
from repro.temporal import (
    ComparatorParams,
    Interval,
    IntervalCollection,
    PredicateParams,
    equals_score,
    equals_score_range,
    greater_score,
    greater_score_range,
)
from repro.temporal.predicates import ALLEN_PREDICATES
from repro.temporal.terms import EndpointVar

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params_strategy = st.builds(
    ComparatorParams,
    lam=st.floats(0, 20, allow_nan=False),
    rho=st.floats(0, 40, allow_nan=False),
)

interval_strategy = st.builds(
    lambda s, length: Interval(0, s, s + length),
    s=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
    length=st.floats(0, 500, allow_nan=False, allow_infinity=False),
)


class TestComparatorProperties:
    @_SETTINGS
    @given(
        params=params_strategy,
        d_min=st.floats(-200, 200),
        width=st.floats(0, 200),
        fraction=st.floats(0, 1),
    )
    def test_score_ranges_contain_every_point(self, params, d_min, width, fraction):
        d_max = d_min + width
        d = d_min + fraction * width
        eq_lo, eq_hi = equals_score_range(d_min, d_max, params)
        gt_lo, gt_hi = greater_score_range(d_min, d_max, params)
        assert eq_lo - 1e-9 <= equals_score(d, 0.0, params) <= eq_hi + 1e-9
        assert gt_lo - 1e-9 <= greater_score(d, 0.0, params) <= gt_hi + 1e-9

    @_SETTINGS
    @given(params=params_strategy, a=st.floats(-1e4, 1e4), b=st.floats(-1e4, 1e4))
    def test_scores_in_unit_interval(self, params, a, b):
        assert 0.0 <= equals_score(a, b, params) <= 1.0
        assert 0.0 <= greater_score(a, b, params) <= 1.0

    @_SETTINGS
    @given(
        params=params_strategy,
        threshold=st.floats(0.01, 1.0),
        d=st.floats(-300, 300),
    )
    def test_threshold_ranges_are_exact(self, params, threshold, d):
        lo_eq, hi_eq = threshold_difference_range("equals", params, threshold)
        in_range = lo_eq <= d <= hi_eq
        assert in_range == (equals_score(d, 0.0, params) >= threshold - 1e-9)
        lo_gt, _ = threshold_difference_range("greater", params, threshold)
        # The greater range is a superset (exact when rho > 0; with rho = 0 the strict
        # Boolean step cannot be expressed by a closed range, so it is only a superset).
        if greater_score(d, 0.0, params) >= threshold - 1e-9:
            assert d >= lo_gt
        # Exactness holds when rho is not so small that lambda + rho*threshold rounds
        # back to lambda (the box is always a superset, which is what correctness needs).
        if params.rho > 1e-6:
            assert (d >= lo_gt) == (greater_score(d, 0.0, params) >= threshold - 1e-9)


class TestPredicateProperties:
    @_SETTINGS
    @given(
        name=st.sampled_from(sorted(ALLEN_PREDICATES)),
        lam_eq=st.floats(0, 10),
        rho_eq=st.floats(0, 20),
        lam_gt=st.floats(0, 10),
        rho_gt=st.floats(0, 20),
        x=interval_strategy,
        y=interval_strategy,
    )
    def test_compiled_scorer_matches_reference(self, name, lam_eq, rho_eq, lam_gt, rho_gt, x, y):
        params = PredicateParams.of(lam_eq, rho_eq, lam_gt, rho_gt)
        predicate = ALLEN_PREDICATES[name](params)
        assert abs(predicate.compile()(x, y) - predicate.score(x, y)) < 1e-9

    @_SETTINGS
    @given(
        name=st.sampled_from(sorted(ALLEN_PREDICATES)),
        x=interval_strategy,
        y=interval_strategy,
    )
    def test_boolean_implies_perfect_score(self, name, x, y):
        boolean = ALLEN_PREDICATES[name](PredicateParams.boolean())
        assert (boolean.score(x, y) == 1.0) == boolean.holds(x, y)

    @_SETTINGS
    @given(
        name=st.sampled_from(sorted(ALLEN_PREDICATES)),
        xs=st.floats(0, 100),
        xe_off=st.floats(0, 100),
        ys=st.floats(0, 100),
        ye_off=st.floats(0, 100),
        box_width=st.floats(1, 50),
    )
    def test_score_range_contains_member_scores(self, name, xs, xe_off, ys, ye_off, box_width):
        predicate = ALLEN_PREDICATES[name](PredicateParams.of(4, 16, 0, 10))
        x = Interval(0, xs, xs + xe_off)
        y = Interval(1, ys, ys + ye_off)
        domains = {
            EndpointVar("x", "start"): (x.start - box_width, x.start + box_width),
            EndpointVar("x", "end"): (x.end - box_width, x.end + box_width),
            EndpointVar("y", "start"): (y.start - box_width, y.start + box_width),
            EndpointVar("y", "end"): (y.end - box_width, y.end + box_width),
        }
        lo, hi = predicate.score_range(domains)
        assert lo - 1e-9 <= predicate.score(x, y) <= hi + 1e-9


combo_strategy = st.builds(
    lambda idx, nb, lb, spread: BucketCombination(
        ("x1", "x2"),
        ((idx, idx), (idx + 1, idx + 2)),
        nb_res=nb,
        lower_bound=lb,
        upper_bound=min(1.0, lb + spread),
    ),
    idx=st.integers(0, 30),
    nb=st.integers(0, 50),
    lb=st.floats(0, 1),
    spread=st.floats(0, 1),
)


class TestTopBucketsProperties:
    @_SETTINGS
    @given(combos=st.lists(combo_strategy, min_size=1, max_size=30), k=st.integers(1, 60))
    def test_selection_satisfies_definition2(self, combos, k):
        # Deduplicate combinations sharing the same key (the space never produces duplicates).
        unique = {c.key(): c for c in combos}
        combos = list(unique.values())
        selected = get_top_buckets(combos, k)
        assert validate_selection(selected, combos, k)

    @_SETTINGS
    @given(combos=st.lists(combo_strategy, min_size=1, max_size=30), k=st.integers(1, 60))
    def test_selection_covers_k_results_when_available(self, combos, k):
        unique = {c.key(): c for c in combos}
        combos = list(unique.values())
        total = sum(c.nb_res for c in combos)
        selected = get_top_buckets(combos, k)
        assert sum(c.nb_res for c in selected) >= min(k, total)


class TestDistributionProperties:
    @_SETTINGS
    @given(
        combos=st.lists(combo_strategy, min_size=1, max_size=40),
        num_reducers=st.integers(1, 10),
    )
    def test_dtb_partitions_combinations(self, combos, num_reducers):
        unique = list({c.key(): c for c in combos}.values())
        assignment = distribute_top_buckets(unique, num_reducers)
        assigned = [c.key() for cs in assignment.combinations_per_reducer.values() for c in cs]
        assert sorted(assigned) == sorted(c.key() for c in unique)
        # Every bucket of every assigned combination reaches that reducer.
        for reducer, cs in assignment.combinations_per_reducer.items():
            for combination in cs:
                for item in combination.bucket_items():
                    assert item in assignment.buckets_per_reducer[reducer]


class TestMergeProperties:
    @_SETTINGS
    @given(
        lists=st.lists(
            st.lists(
                st.builds(
                    ResultTuple,
                    uids=st.tuples(st.integers(0, 50), st.integers(0, 50)),
                    score=st.floats(0, 1),
                ),
                max_size=20,
            ),
            max_size=5,
        ),
        k=st.integers(1, 30),
    )
    def test_merge_equals_global_sort(self, lists, k):
        merged = merge_top_k(lists, k)
        best: dict[tuple[int, ...], float] = {}
        for chunk in lists:
            for result in chunk:
                best[result.uids] = max(best.get(result.uids, -1.0), result.score)
        expected = sorted(
            (ResultTuple(uids, score) for uids, score in best.items()),
            key=lambda r: r.sort_key(),
        )[:k]
        assert [r.uids for r in merged] == [r.uids for r in expected]
        assert [r.score for r in merged] == [r.score for r in expected]


class TestIndexProperties:
    @_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 200),
        qx=st.floats(0, 1000),
        qy=st.floats(0, 1000),
        width=st.floats(0, 500),
    )
    def test_rtree_query_matches_linear_scan(self, seed, n, qx, qy, width):
        import numpy as np

        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 1000, n)
        lengths = rng.uniform(0, 100, n)
        intervals = [
            Interval(i, float(s), float(s + l)) for i, (s, l) in enumerate(zip(starts, lengths))
        ]
        tree = RTree(intervals, leaf_capacity=8)
        box = Rect(qx, qx + width, qy, qy + width)
        expected = {x.uid for x in intervals if box.contains_point(x.start, x.end)}
        assert {x.uid for x in tree.query(box)} == expected


class TestStatisticsProperties:
    @_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 100),
        num_granules=st.integers(1, 25),
    )
    def test_buckets_contain_their_intervals(self, seed, n, num_granules):
        import numpy as np

        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 500, n)
        lengths = rng.uniform(0, 80, n)
        collection = IntervalCollection(
            "c",
            [Interval(i, float(s), float(s + l)) for i, (s, l) in enumerate(zip(starts, lengths))],
        )
        statistics = collect_statistics({"c": collection}, num_granules)
        matrix = statistics.matrix("c")
        assert matrix.total() == n
        granularity = matrix.granularity
        for interval in collection:
            bucket = granularity.bucket_of(interval)
            box = granularity.bucket_box(bucket)
            assert box.start_low - 1e-9 <= interval.start <= box.start_high + 1e-9
            assert box.end_low - 1e-9 <= interval.end <= box.end_high + 1e-9

    @_SETTINGS
    @given(
        time_min=st.floats(-1000, 1000),
        span=st.floats(0, 1000),
        num_granules=st.integers(1, 40),
        fraction=st.floats(0, 1),
    )
    def test_granule_of_always_in_range(self, time_min, span, num_granules, fraction):
        granularity = Granularity(time_min, time_min + span, num_granules)
        timestamp = time_min + fraction * span
        index = granularity.granule_of(timestamp)
        assert 0 <= index < num_granules
        low, high = granularity.granule_range(index)
        assert low - 1e-6 <= timestamp <= high + 1e-6

    @_SETTINGS
    @given(
        time_min=st.floats(-1000, 1000),
        span=st.floats(0, 1000),
        num_granules=st.integers(1, 40),
        fractions=st.lists(st.floats(-0.5, 1.5), min_size=1, max_size=50),
    )
    def test_vectorized_granules_match_scalar_elementwise(
        self, time_min, span, num_granules, fractions
    ):
        """``granules_of`` is the vectorized path of phase (a); it must equal
        ``granule_of`` exactly, including out-of-range clamping."""
        import numpy as np

        granularity = Granularity(time_min, time_min + span, num_granules)
        timestamps = np.array([time_min + fraction * span for fraction in fractions])
        batch = granularity.granules_of(timestamps)
        assert list(batch) == [granularity.granule_of(t) for t in timestamps]

    @_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(0, 120),
        num_granules=st.integers(1, 25),
    )
    def test_vectorized_bucket_histogram_matches_per_record_loop(
        self, seed, n, num_granules
    ):
        """One ``bincount`` over the start/end columns == per-interval ``add``."""
        import numpy as np

        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 500, n)
        ends = starts + rng.uniform(0, 80, n)
        granularity = Granularity(0.0, 500.0, num_granules)
        batched = bucket_counts(granularity, starts, ends)
        reference: dict[tuple[int, int], int] = {}
        for start, end in zip(starts, ends):
            key = (granularity.granule_of(start), granularity.granule_of(end))
            reference[key] = reference.get(key, 0) + 1
        assert batched == reference

    @_SETTINGS
    @given(
        seed=st.integers(0, 2**16),
        n_base=st.integers(2, 60),
        n_appended=st.integers(1, 40),
        num_granules=st.integers(1, 25),
    )
    def test_incremental_update_equals_collection_from_scratch(
        self, seed, n_base, n_appended, num_granules
    ):
        """Appending intervals via update_statistics == collecting over the final data.

        Appended intervals are drawn inside the base collection's time range so
        that the from-scratch collection derives identical granule boundaries —
        the comparison is then exact, across every granularity.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        starts = rng.uniform(0, 500, n_base)
        lengths = rng.uniform(0, 80, n_base)
        base = [
            Interval(i, float(s), float(s + l))
            for i, (s, l) in enumerate(zip(starts, lengths))
        ]
        base_collection = IntervalCollection("c", list(base))
        low, high = base_collection.time_range()

        span = high - low
        offsets = rng.uniform(0, 1, n_appended)
        fractions = rng.uniform(0, 1, n_appended)
        appended = []
        for index, (offset, fraction) in enumerate(zip(offsets, fractions)):
            start = low + offset * span
            end = start + fraction * (high - start)
            appended.append(Interval(1000 + index, float(start), float(end)))

        incremental = collect_statistics({"c": base_collection}, num_granules)
        update_statistics(incremental, inserted={"c": appended})

        final = IntervalCollection("c", base + appended)
        scratch = collect_statistics({"c": final}, num_granules)

        assert incremental.matrix("c").granularity == scratch.matrix("c").granularity
        assert dict(incremental.matrix("c").counts) == dict(scratch.matrix("c").counts)
        assert incremental.matrix("c").total() == n_base + n_appended
