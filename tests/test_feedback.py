"""Tests for feedback-driven planning: fingerprints, cost store, plan cache.

Covers the ISSUE's acceptance matrix: repeated identical queries hit the plan
cache, statistics drift misses it, LRU churn never evicts the just-used entry,
calibration is deterministic given the same observation log, and the bounded
statistics cache stays within ``max_entries`` under multi-dataset churn.
"""

import threading

import pytest

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig
from repro.plan import (
    AutoPlanner,
    CostStore,
    ExecutionContext,
    PlanCache,
    PlanFeedback,
    StatisticsCache,
    get_algorithm,
    query_fingerprint,
    statistics_fingerprint,
    workload_fingerprint,
)
from repro.plan.planner import PlanExplanation
from repro.temporal import Interval, IntervalCollection


def make_context(backend: str = "serial") -> ExecutionContext:
    return ExecutionContext(
        cluster=ClusterConfig(num_reducers=4, num_mappers=2, backend=backend, max_workers=2)
    )


def named(collections) -> dict:
    return {c.name: c for c in collections}


class TestFingerprints:
    def test_query_fingerprint_is_stable(self, tiny_collections, p1):
        a = build_query("Qs,m", tiny_collections, p1, k=10)
        b = build_query("Qs,m", tiny_collections, p1, k=10)
        assert query_fingerprint(a) == query_fingerprint(b)

    def test_query_fingerprint_distinguishes_k_and_shape(self, tiny_collections, p1):
        base = build_query("Qs,m", tiny_collections, p1, k=10)
        other_k = build_query("Qs,m", tiny_collections, p1, k=11)
        other_shape = build_query("Qb,b", tiny_collections, p1, k=10)
        prints = {query_fingerprint(q) for q in (base, other_k, other_shape)}
        assert len(prints) == 3

    def test_statistics_fingerprint_tracks_dataset_state(self, tiny_collections):
        before = statistics_fingerprint(named(tiny_collections))
        assert before == statistics_fingerprint(named(tiny_collections))
        drifted = list(tiny_collections)
        moved = [
            Interval(iv.uid, iv.start + 1.0, iv.end + 1.0)
            for iv in drifted[0]
        ]
        drifted[0] = IntervalCollection(drifted[0].name, moved)
        assert statistics_fingerprint(named(drifted)) != before

    def test_workload_fingerprint_pools_same_magnitude_data(self, p1):
        config = SyntheticConfig(size=40, start_max=800.0, length_max=60.0)
        run_a = list(generate_collections(3, config, seed=1).values())
        run_b = list(generate_collections(3, config, seed=2).values())
        qa = build_query("Qs,m", run_a, p1, k=10)
        qb = build_query("Qs,m", run_b, p1, k=10)
        # Different contents, same shape: observations pool together...
        assert workload_fingerprint(qa, named(run_a)) == workload_fingerprint(qb, named(run_b))
        # ...while the exact planning problems stay distinct.
        assert statistics_fingerprint(named(run_a)) != statistics_fingerprint(named(run_b))

    def test_workload_fingerprint_splits_predicates(self, tiny_collections, p1):
        qa = build_query("Qs,m", tiny_collections, p1, k=10)
        qb = build_query("Qo,o", tiny_collections, p1, k=10)
        cols = named(tiny_collections)
        assert workload_fingerprint(qa, cols) != workload_fingerprint(qb, cols)


KNOBS_VECTOR = {"num_granules": 20, "strategy": "loose", "assigner": "dtb", "kernel": "vector"}
KNOBS_SWEEP = {"num_granules": 20, "strategy": "loose", "assigner": "dtb", "kernel": "sweep"}


def outcome(join_seconds: float, candidates: float) -> dict:
    return {"join_seconds": join_seconds, "candidates_examined": candidates}


class TestCostStore:
    def test_record_and_observations(self):
        store = CostStore()
        store.record("w1", KNOBS_VECTOR, outcome(0.5, 100.0))
        store.record("w1", KNOBS_VECTOR, outcome(0.7, 100.0))
        store.record("w2", KNOBS_SWEEP, outcome(0.1, 10.0))
        assert len(store) == 3
        by_knobs = store.observations("w1")
        assert list(by_knobs) == [CostStore.knob_key(KNOBS_VECTOR)]
        assert len(by_knobs[CostStore.knob_key(KNOBS_VECTOR)]) == 2
        summary = store.describe()
        assert summary["observations"] == 3
        assert summary["workloads"] == 2
        assert summary["recorded"] == 3

    def test_persists_and_reloads_identically(self, tmp_path):
        path = tmp_path / "observed.costs"
        store = CostStore(path)
        for _ in range(3):
            store.record("w1", KNOBS_VECTOR, outcome(0.9, 100.0))
            store.record("w1", KNOBS_SWEEP, outcome(0.3, 100.0))
        reloaded = CostStore(path)
        assert reloaded.describe()["loaded"] == 6
        # Calibration is deterministic given the same log.
        assert reloaded.kernel_costs("w1") == store.kernel_costs("w1")
        assert reloaded.calibrated_kernel("w1") == store.calibrated_kernel("w1")

    def test_corrupt_tail_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "observed.costs"
        store = CostStore(path)
        store.record("w1", KNOBS_VECTOR, outcome(0.5, 10.0))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"workload": "w1", "knobs": {"kern')  # torn mid-append
        reloaded = CostStore(path)
        assert reloaded.describe()["loaded"] == 1
        assert reloaded.describe()["corrupt_lines"] == 1

    def test_calibration_needs_two_warm_kernels(self):
        store = CostStore()
        for _ in range(3):
            store.record("w1", KNOBS_VECTOR, outcome(0.5, 100.0))
        # One warm kernel carries no ratio.
        assert store.calibrated_kernel("w1") is None
        for _ in range(2):
            store.record("w1", KNOBS_SWEEP, outcome(0.1, 100.0))
        # The second kernel is still below the observation threshold.
        assert store.calibrated_kernel("w1", min_observations=3) is None
        store.record("w1", KNOBS_SWEEP, outcome(0.1, 100.0))
        kernel, costs = store.calibrated_kernel("w1", min_observations=3)
        assert kernel == "sweep"
        assert set(costs) == {"vector", "sweep"}
        assert costs["sweep"] == pytest.approx(0.001)

    def test_zero_candidate_outcomes_do_not_poison_means(self):
        store = CostStore()
        for _ in range(3):
            store.record("w1", KNOBS_VECTOR, outcome(0.5, 0.0))
        assert store.kernel_costs("w1") == {}


def explanation(num_granules: int = 20) -> PlanExplanation:
    return PlanExplanation(
        algorithm="tkij",
        num_granules=num_granules,
        strategy="loose",
        assigner="dtb",
        kernel="vector",
        inputs={"probe_seconds": 1.25, "probe_cached": 0.0},
        reasons=["probed"],
    )


class TestPlanCache:
    def test_hit_miss_counters(self):
        cache = PlanCache(max_entries=4)
        assert cache.lookup("q1", "s1") is None
        cache.store("q1", "s1", KNOBS_VECTOR, explanation())
        hit = cache.lookup("q1", "s1")
        assert hit is not None
        knobs, exp = hit
        assert knobs == KNOBS_VECTOR
        assert cache.describe() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "entries": 1,
            "max_entries": 4,
        }
        # A different dataset state misses even for the same query.
        assert cache.lookup("q1", "s2") is None

    def test_stored_explanations_are_probe_normalised_and_isolated(self):
        cache = PlanCache()
        cache.store("q1", "s1", KNOBS_VECTOR, explanation())
        _, exp = cache.lookup("q1", "s1")
        assert exp.inputs["probe_seconds"] == 0.0
        assert exp.inputs["probe_cached"] == 1.0
        # Hits hand out copies: annotating one must not leak into the cache.
        exp.reasons.append("annotated by caller")
        _, fresh = cache.lookup("q1", "s1")
        assert "annotated by caller" not in fresh.reasons

    def test_lru_eviction_never_drops_the_just_used_entry(self):
        cache = PlanCache(max_entries=2)
        cache.store("q1", "s1", KNOBS_VECTOR, explanation())
        cache.store("q2", "s1", KNOBS_SWEEP, explanation())
        for round_no in range(3, 10):
            assert cache.lookup("q1", "s1") is not None  # keep q1 hot
            cache.store(f"q{round_no}", "s1", KNOBS_VECTOR, explanation())
            assert cache.lookup("q1", "s1") is not None
            assert len(cache) <= 2
        assert cache.describe()["evictions"] == 7

    def test_invalidate_by_query(self):
        cache = PlanCache()
        cache.store("q1", "s1", KNOBS_VECTOR, explanation())
        cache.store("q1", "s2", KNOBS_VECTOR, explanation())
        cache.store("q2", "s1", KNOBS_SWEEP, explanation())
        assert cache.invalidate("q1") == 2
        assert cache.lookup("q2", "s1") is not None
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            PlanCache(max_entries=0)


class TestPlannerCalibration:
    def test_cold_store_reason_mentions_static_fallback(self, tiny_collections, p1):
        query = build_query("Qs,m", tiny_collections, p1, k=10)
        context = make_context()
        planner = AutoPlanner(cost_store=CostStore())
        _, exp = planner.plan(query, context)
        assert any("cost store cold" in reason for reason in exp.reasons)

    def test_warm_store_overrides_static_kernel_choice(self, tiny_collections, p1):
        query = build_query("Qs,m", tiny_collections, p1, k=10)
        workload = workload_fingerprint(query, named(tiny_collections))
        store = CostStore()
        # Contrived evidence: "sweep" is observed far cheaper per candidate.
        for _ in range(3):
            store.record(workload, KNOBS_VECTOR, outcome(5.0, 100.0))
            store.record(workload, KNOBS_SWEEP, outcome(0.01, 100.0))
        context = make_context()
        planner = AutoPlanner(cost_store=store)
        chosen, exp = planner.plan(query, context)
        assert chosen["kernel"] == "sweep"
        assert any("observed calibration" in reason for reason in exp.reasons)

    def test_calibration_is_deterministic_for_a_given_log(self, tiny_collections, p1, tmp_path):
        query = build_query("Qs,m", tiny_collections, p1, k=10)
        workload = workload_fingerprint(query, named(tiny_collections))
        path = tmp_path / "observed.costs"
        store = CostStore(path)
        for _ in range(4):
            store.record(workload, KNOBS_VECTOR, outcome(0.02, 100.0))
            store.record(workload, KNOBS_SWEEP, outcome(2.0, 100.0))
        picks = []
        for _ in range(3):
            planner = AutoPlanner(cost_store=CostStore(path))
            chosen, _ = planner.plan(query, make_context())
            picks.append(chosen["kernel"])
        assert picks == ["vector", "vector", "vector"]


class TestAlgorithmIntegration:
    def test_second_auto_plan_hits_cache_with_identical_results(self, tiny_collections, p1):
        query = build_query("Qs,m", tiny_collections, p1, k=10)
        context = make_context()
        context.feedback = PlanFeedback(plan_cache=PlanCache(max_entries=8), cost_store=CostStore())
        algorithm = get_algorithm("tkij")
        first = algorithm.execute(algorithm.plan(query, context, mode="auto"))
        plan = algorithm.plan(query, context, mode="auto")
        second = algorithm.execute(plan)
        stats = context.feedback.plan_cache.describe()
        assert stats == {**stats, "hits": 1, "misses": 1, "entries": 1}
        assert any("plan cache" in reason for reason in plan.explanation.reasons)
        assert [(r.uids, r.score) for r in first.results] == [
            (r.uids, r.score) for r in second.results
        ]
        # Both executions fed the observed-cost store.
        assert context.feedback.cost_store.describe()["recorded"] == 2

    def test_without_feedback_auto_mode_is_unchanged(self, tiny_collections, p1):
        query = build_query("Qs,m", tiny_collections, p1, k=10)
        context = make_context()
        algorithm = get_algorithm("tkij")
        plan = algorithm.plan(query, context, mode="auto")
        assert context.feedback is None
        assert all("plan cache" not in reason for reason in plan.explanation.reasons)


class TestBoundedStatisticsCache:
    def make_datasets(self, count: int) -> list[dict]:
        config = SyntheticConfig(size=12, start_max=200.0)
        datasets = []
        for seed in range(count):
            # Distinct names per dataset: each one occupies its own cache key.
            datasets.append(
                {
                    f"d{seed}-{c.name}": IntervalCollection(f"d{seed}-{c.name}", list(c))
                    for c in generate_collections(2, config, seed=seed).values()
                }
            )
        return datasets

    def collect(self, cache: StatisticsCache, collections: dict) -> None:
        from repro.core import collect_statistics

        cache.get_or_collect(collections, 5, lambda cols, g: collect_statistics(cols, g))

    def test_stays_within_bound_under_churn(self):
        cache = StatisticsCache(max_entries=3)
        for collections in self.make_datasets(10):
            self.collect(cache, collections)
            assert len(cache) <= 3
        assert cache.describe()["evictions"] == 7

    def test_lru_keeps_the_hot_entry(self):
        cache = StatisticsCache(max_entries=2)
        datasets = self.make_datasets(6)
        hot = datasets[0]
        self.collect(cache, hot)
        for cold in datasets[1:]:
            self.collect(cache, hot)  # touch: refreshes recency
            self.collect(cache, cold)
        assert cache.lookup(hot, 5) is not None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            StatisticsCache(max_entries=0)

    def test_generation_bump_lazily_invalidates(self):
        cache = StatisticsCache()
        collections = self.make_datasets(1)[0]
        self.collect(cache, collections)
        assert cache.lookup(collections, 5) is not None
        cache.bump_generation()
        assert cache.lookup(collections, 5) is None
        assert cache.describe()["stale_drops"] == 1
        # Recollected entries live in the new generation.
        self.collect(cache, collections)
        assert cache.lookup(collections, 5) is not None

    def test_update_counts_noops_separately(self):
        cache = StatisticsCache()
        collections = self.make_datasets(1)[0]
        self.collect(cache, collections)
        name = next(iter(collections))
        assert cache.update(inserted={"unrelated": [Interval(0, 1.0, 2.0)]}) == 0
        assert cache.describe()["updates"] == 0
        assert cache.describe()["noop_updates"] == 1
        maintained = cache.update(inserted={name: [Interval(999, 1.0, 2.0)]})
        assert maintained == 1
        assert cache.describe()["updates"] == 1
        assert cache.describe()["noop_updates"] == 1


class TestFeedbackThreadSafety:
    def test_concurrent_plan_cache_traffic_stays_bounded(self):
        cache = PlanCache(max_entries=8)
        errors: list[Exception] = []

        def churn(worker: int) -> None:
            try:
                for i in range(200):
                    key = f"q{worker}-{i % 12}"
                    cache.store(key, "s", KNOBS_VECTOR, explanation())
                    cache.lookup(key, "s")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=churn, args=(w,)) for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 8
