"""Tests for the equals/greater approximation comparators (paper Figure 3)."""

import pytest

from repro.temporal import (
    ComparatorParams,
    PredicateParams,
    equals_score,
    equals_score_range,
    greater_score,
    greater_score_range,
)


class TestComparatorParams:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ComparatorParams(-1.0, 0.0)
        with pytest.raises(ValueError):
            ComparatorParams(0.0, -1.0)

    def test_predicate_params_of(self):
        params = PredicateParams.of(4, 16, 0, 10)
        assert params.equals == ComparatorParams(4, 16)
        assert params.greater == ComparatorParams(0, 10)

    def test_boolean_params(self):
        params = PredicateParams.boolean()
        assert params.equals == ComparatorParams(0, 0)
        assert params.greater == ComparatorParams(0, 0)


class TestEqualsScore:
    def test_within_lambda_is_one(self):
        params = ComparatorParams(4, 16)
        assert equals_score(10, 12, params) == 1.0
        assert equals_score(10, 14, params) == 1.0

    def test_beyond_lambda_plus_rho_is_zero(self):
        params = ComparatorParams(4, 16)
        assert equals_score(10, 31, params) == 0.0
        assert equals_score(10, 200, params) == 0.0

    def test_linear_in_between(self):
        params = ComparatorParams(4, 16)
        # |d| = 12 -> (4 + 16 - 12) / 16 = 0.5
        assert equals_score(22, 10, params) == pytest.approx(0.5)
        assert equals_score(10, 22, params) == pytest.approx(0.5)

    def test_boolean_fallback(self):
        params = ComparatorParams(0, 0)
        assert equals_score(5, 5, params) == 1.0
        assert equals_score(5, 5.001, params) == 0.0

    def test_lambda_only(self):
        params = ComparatorParams(3, 0)
        assert equals_score(5, 8, params) == 1.0
        assert equals_score(5, 8.5, params) == 0.0


class TestGreaterScore:
    def test_saturation(self):
        params = ComparatorParams(0, 10)
        assert greater_score(30, 10, params) == 1.0

    def test_zero_when_not_greater(self):
        params = ComparatorParams(0, 10)
        assert greater_score(10, 30, params) == 0.0
        assert greater_score(10, 10, params) == 0.0

    def test_linear_region(self):
        params = ComparatorParams(0, 10)
        assert greater_score(15, 10, params) == pytest.approx(0.5)

    def test_lambda_shift(self):
        params = ComparatorParams(2, 8)
        assert greater_score(12, 10, params) == 0.0
        assert greater_score(16, 10, params) == pytest.approx(0.5)
        assert greater_score(20, 10, params) == 1.0

    def test_boolean_fallback_strict(self):
        params = ComparatorParams(0, 0)
        assert greater_score(10.0, 10.0, params) == 0.0
        assert greater_score(10.001, 10.0, params) == 1.0


class TestScoreRanges:
    def test_equals_range_containing_zero(self):
        params = ComparatorParams(4, 16)
        lo, hi = equals_score_range(-2.0, 30.0, params)
        assert hi == 1.0
        assert lo == equals_score(30.0, 0.0, params)

    def test_equals_range_all_positive(self):
        params = ComparatorParams(4, 16)
        lo, hi = equals_score_range(8.0, 12.0, params)
        assert hi == equals_score(8.0, 0.0, params)
        assert lo == equals_score(12.0, 0.0, params)

    def test_equals_range_all_negative(self):
        params = ComparatorParams(4, 16)
        lo, hi = equals_score_range(-12.0, -8.0, params)
        assert hi == equals_score(-8.0, 0.0, params)
        assert lo == equals_score(-12.0, 0.0, params)

    def test_greater_range_monotone(self):
        params = ComparatorParams(0, 10)
        lo, hi = greater_score_range(-5.0, 5.0, params)
        assert lo == 0.0
        assert hi == pytest.approx(0.5)

    def test_empty_ranges_rejected(self):
        params = ComparatorParams(0, 10)
        with pytest.raises(ValueError):
            equals_score_range(5.0, 4.0, params)
        with pytest.raises(ValueError):
            greater_score_range(5.0, 4.0, params)

    def test_ranges_are_exact_on_samples(self):
        params = ComparatorParams(3, 7)
        d_min, d_max = -4.0, 9.0
        samples = [d_min + i * (d_max - d_min) / 50 for i in range(51)]
        eq_values = [equals_score(d, 0.0, params) for d in samples]
        gt_values = [greater_score(d, 0.0, params) for d in samples]
        eq_lo, eq_hi = equals_score_range(d_min, d_max, params)
        gt_lo, gt_hi = greater_score_range(d_min, d_max, params)
        assert eq_lo <= min(eq_values) and max(eq_values) <= eq_hi
        assert gt_lo <= min(gt_values) and max(gt_values) <= gt_hi
        # The bounds are attained (within sampling resolution).
        assert max(eq_values) == pytest.approx(eq_hi, abs=0.05)
        assert min(gt_values) == pytest.approx(gt_lo, abs=0.05)
