"""Chaos parity matrix: every algorithm × kernel × backend under injected faults.

The acceptance bar of the fault-tolerance layer: under a seeded
:class:`~repro.mapreduce.FaultPlan` whose per-task failures stay within the
attempt budget, every registered algorithm on every backend must produce
results *and* user-visible counters byte-identical to its own fault-free run.
The fault plan's seeded decisions are keyed by (job, phase, task), so the same
chaos strikes the same tasks on every backend — the matrix would catch a
backend whose retry path leaks partial outputs, double-merges counters, or
reorders results.
"""

from __future__ import annotations

import pytest

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import build_query
from repro.mapreduce import ClusterConfig, FaultPlan
from repro.plan import ExecutionContext, available_algorithms, get_algorithm

CHAOS_PLAN = FaultPlan(seed=13, failure_rate=0.35, max_failures_per_task=2)
ATTEMPT_BUDGET = 4  # strictly above max_failures_per_task: every fault retried away

BACKENDS = ("serial", "thread", "process")
TKIJ_KERNELS = ("scalar", "vector", "sweep")


@pytest.fixture(scope="module")
def chaos_collections():
    config = SyntheticConfig(size=30, start_max=600.0, length_max=60.0)
    return list(generate_collections(3, config, seed=77).values())


def run_once(algorithm_name, collections, backend, kernel, fault_plan):
    algorithm = get_algorithm(algorithm_name)
    params = "P1" if algorithm.scored else "PB"
    query = build_query("Qs,m", collections, params, k=8)
    cluster = ClusterConfig(
        num_reducers=4,
        num_mappers=3,
        backend=backend,
        max_workers=2,
        max_task_attempts=ATTEMPT_BUDGET,
        fault_plan=fault_plan,
    )
    options = {"kernel": kernel} if kernel is not None else {}
    with ExecutionContext(cluster=cluster) as context:
        report = algorithm.run(query, context, **algorithm.plan_knobs(options))
    return report


def metric_fingerprint(report):
    """Everything user-visible a fault could corrupt, minus wall-clock noise."""
    return [
        (
            metrics.job_name,
            metrics.shuffle_records,
            metrics.shuffle_size,
            [task.task_id for task in metrics.map_tasks],
            [task.task_id for task in metrics.reduce_tasks],
            sorted(metrics.counters.as_dict().items()),
        )
        for metrics in report.metrics
    ]


def assert_chaos_parity(algorithm_name, collections, backend, kernel=None):
    reference = run_once(algorithm_name, collections, backend, kernel, fault_plan=None)
    chaotic = run_once(algorithm_name, collections, backend, kernel, fault_plan=CHAOS_PLAN)
    label = f"{algorithm_name}/{kernel}/{backend}"
    assert [(r.uids, r.score) for r in chaotic.results] == [
        (r.uids, r.score) for r in reference.results
    ], label
    assert metric_fingerprint(chaotic) == metric_fingerprint(reference), label
    assert all(metrics.failed_attempts == [] for metrics in reference.metrics), label
    return sum(len(metrics.failed_attempts) for metrics in chaotic.metrics)


class TestChaosParityMatrix:
    def test_registry_is_fully_covered(self):
        """The matrix below must break when someone registers a new algorithm."""
        assert set(available_algorithms()) == {
            "tkij",
            "tkij-streaming",
            "naive",
            "allmatrix",
            "rccis",
            "sql-oracle",
        }

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", TKIJ_KERNELS)
    def test_tkij(self, chaos_collections, backend, kernel):
        injected = assert_chaos_parity("tkij", chaos_collections, backend, kernel)
        assert injected > 0, "the seeded plan should strike at least one tkij task"

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("kernel", TKIJ_KERNELS)
    def test_tkij_streaming_one_shot(self, chaos_collections, backend, kernel):
        # Static collections: the streaming evaluator degrades to a one-shot
        # full evaluation, exercising its pipeline under the same chaos.
        assert_chaos_parity("tkij-streaming", chaos_collections, backend, kernel)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_allmatrix(self, chaos_collections, backend):
        assert_chaos_parity("allmatrix", chaos_collections, backend)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rccis(self, chaos_collections, backend):
        assert_chaos_parity("rccis", chaos_collections, backend)

    def test_naive(self, chaos_collections):
        # The in-process oracle never runs the engine; the fault plan must be
        # a no-op rather than an error.
        assert_chaos_parity("naive", chaos_collections, "serial") == 0

    def test_sql_oracle(self, chaos_collections):
        # Same contract as naive: sqlite runs in-process, no engine tasks.
        assert_chaos_parity("sql-oracle", chaos_collections, "serial") == 0


class TestChaosShuffleHygiene:
    """Chaos through the out-of-core shuffle (DESIGN.md §10).

    Retried tasks must keep byte-identical results under shared-memory
    transfer and disk spill, and both the retry and the job-abort paths must
    leave ``/dev/shm`` and the spill tempdir clean.
    """

    @staticmethod
    def _run_tkij(collections, backend, transfer=None, budget=None, fault_plan=None,
                  attempts=ATTEMPT_BUDGET):
        algorithm = get_algorithm("tkij")
        query = build_query("Qs,m", collections, "P1", k=8)
        cluster = ClusterConfig(
            num_reducers=4,
            num_mappers=3,
            backend=backend,
            max_workers=2,
            max_task_attempts=attempts,
            fault_plan=fault_plan,
            transfer=transfer,
            memory_budget_bytes=budget,
        )
        with ExecutionContext(cluster=cluster) as context:
            return algorithm.run(
                query, context, **algorithm.plan_knobs({"kernel": "vector"})
            )

    @staticmethod
    def _assert_no_shuffle_litter():
        import glob
        import tempfile

        assert glob.glob("/dev/shm/tkij-shm-*") == []
        assert glob.glob(f"{tempfile.gettempdir()}/tkij-spill-*") == []

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_chaos_parity_with_shm_and_spill(self, chaos_collections, backend):
        reference = self._run_tkij(chaos_collections, "serial")
        chaotic = self._run_tkij(
            chaos_collections, backend, transfer="shm", budget=2048,
            fault_plan=CHAOS_PLAN,
        )
        label = f"shm+spill/{backend}"
        assert [(r.uids, r.score) for r in chaotic.results] == [
            (r.uids, r.score) for r in reference.results
        ], label
        assert metric_fingerprint(chaotic) == metric_fingerprint(reference), label
        assert chaotic.shuffle_bytes == reference.shuffle_bytes, label
        assert chaotic.shm_segments > 0, label
        assert chaotic.spill_runs > 0, label
        assert sum(len(m.failed_attempts) for m in chaotic.metrics) > 0, label
        self._assert_no_shuffle_litter()

    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_aborted_job_leaks_nothing(self, chaos_collections, backend):
        from repro.mapreduce import FaultRule, TaskFailedError

        # Reduce task 0 fails every attempt: the join job aborts after the
        # budget is spent, and the engine's finally must still unlink every
        # shared segment and remove the spill directory.
        abort_plan = FaultPlan(
            rules=(
                FaultRule(action="fail", phase="reduce", task=0, attempts=(0, 1)),
            )
        )
        with pytest.raises(TaskFailedError):
            self._run_tkij(
                chaos_collections, backend, transfer="shm", budget=2048,
                fault_plan=abort_plan, attempts=2,
            )
        self._assert_no_shuffle_litter()
