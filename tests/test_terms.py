"""Tests for linear endpoint terms."""

import pytest

from repro.temporal import Interval
from repro.temporal.terms import EndpointVar, constant, end_of, length_of, start_of


@pytest.fixture()
def xy():
    return {"x": Interval(0, 10.0, 30.0), "y": Interval(1, 25.0, 45.0)}


class TestEndpointVar:
    def test_value(self, xy):
        assert EndpointVar("x", "start").value(xy["x"]) == 10.0
        assert EndpointVar("x", "end").value(xy["x"]) == 30.0

    def test_invalid_endpoint(self):
        with pytest.raises(ValueError):
            EndpointVar("x", "middle")


class TestTermConstruction:
    def test_start_end_length(self, xy):
        assert start_of("x").evaluate(xy) == 10.0
        assert end_of("x").evaluate(xy) == 30.0
        assert length_of("x").evaluate(xy) == 20.0

    def test_constant(self, xy):
        assert constant(7.5).evaluate(xy) == 7.5

    def test_addition_and_subtraction(self, xy):
        term = end_of("x") - start_of("y") + 5
        assert term.evaluate(xy) == 30.0 - 25.0 + 5

    def test_scalar_multiplication(self, xy):
        term = length_of("x") * 10
        assert term.evaluate(xy) == 200.0
        assert (2 * start_of("x")).evaluate(xy) == 20.0

    def test_right_subtraction(self, xy):
        term = 100 - start_of("x")
        assert term.evaluate(xy) == 90.0

    def test_cancellation_removes_zero_coefficients(self):
        term = start_of("x") - start_of("x")
        assert term.coefficients == ()
        assert term.constant == 0.0

    def test_variables(self):
        term = end_of("x") - start_of("y")
        assert term.variables() == {"x", "y"}
        assert EndpointVar("x", "end") in term.endpoint_vars()


class TestTermBounds:
    def test_bounds_positive_coefficients(self):
        term = start_of("x") + end_of("x")
        domains = {
            EndpointVar("x", "start"): (0.0, 10.0),
            EndpointVar("x", "end"): (20.0, 30.0),
        }
        assert term.bounds(domains) == (20.0, 40.0)

    def test_bounds_negative_coefficients(self):
        term = start_of("y") - end_of("x")
        domains = {
            EndpointVar("y", "start"): (100.0, 110.0),
            EndpointVar("x", "end"): (20.0, 30.0),
        }
        assert term.bounds(domains) == (70.0, 90.0)

    def test_bounds_with_constant_only(self):
        assert constant(4.0).bounds({}) == (4.0, 4.0)

    def test_bounds_contain_all_evaluations(self):
        term = 10 * length_of("x") - start_of("y")
        domains = {
            EndpointVar("x", "start"): (0.0, 5.0),
            EndpointVar("x", "end"): (5.0, 9.0),
            EndpointVar("y", "start"): (1.0, 3.0),
        }
        lo, hi = term.bounds(domains)
        for xs in (0.0, 2.5, 5.0):
            for xe in (5.0, 7.0, 9.0):
                for ys in (1.0, 2.0, 3.0):
                    value = term.evaluate(
                        {"x": Interval(0, xs, xe), "y": Interval(1, ys, ys + 1)}
                    )
                    assert lo <= value <= hi
