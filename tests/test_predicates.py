"""Tests for Boolean and scored temporal predicates (paper Figures 2 and 4)."""

import pytest

from repro.temporal import Interval, PredicateParams
from repro.temporal.predicates import (
    ALLEN_PREDICATES,
    before,
    contains,
    equals,
    finished_by,
    just_before,
    meets,
    overlaps,
    predicate_by_name,
    shift_meets,
    sparks,
    starts,
)
from repro.temporal.terms import EndpointVar

P1 = PredicateParams.of(4, 16, 0, 10)
PB = PredicateParams.boolean()


def iv(start, end, uid=0):
    return Interval(uid, float(start), float(end))


class TestBooleanSemantics:
    """Boolean interpretation must match the Allen algebra definitions exactly."""

    def test_before(self):
        assert before(PB).holds(iv(0, 5), iv(6, 10))
        assert not before(PB).holds(iv(0, 5), iv(5, 10))
        assert not before(PB).holds(iv(0, 5), iv(3, 10))

    def test_equals(self):
        assert equals(PB).holds(iv(1, 5), iv(1, 5))
        assert not equals(PB).holds(iv(1, 5), iv(1, 6))

    def test_meets(self):
        assert meets(PB).holds(iv(0, 5), iv(5, 10))
        assert not meets(PB).holds(iv(0, 5), iv(6, 10))

    def test_overlaps(self):
        assert overlaps(PB).holds(iv(0, 6), iv(4, 10))
        assert not overlaps(PB).holds(iv(0, 6), iv(6, 10))
        assert not overlaps(PB).holds(iv(0, 12), iv(4, 10))  # containment, not overlap

    def test_contains(self):
        assert contains(PB).holds(iv(0, 12), iv(4, 10))
        assert not contains(PB).holds(iv(0, 8), iv(4, 10))

    def test_starts(self):
        assert starts(PB).holds(iv(2, 5), iv(2, 10))
        assert not starts(PB).holds(iv(2, 10), iv(2, 5))
        assert not starts(PB).holds(iv(1, 5), iv(2, 10))

    def test_finished_by(self):
        assert finished_by(PB).holds(iv(0, 10), iv(4, 10))
        assert not finished_by(PB).holds(iv(5, 10), iv(4, 10))

    def test_just_before(self):
        predicate = just_before(PB, avg_length=10.0)
        assert predicate.holds(iv(0, 5), iv(12, 20))
        assert not predicate.holds(iv(0, 5), iv(20, 30))  # gap larger than avg

    def test_shift_meets(self):
        predicate = shift_meets(PB, avg_length=10.0)
        assert predicate.holds(iv(0, 5), iv(15, 20))
        assert not predicate.holds(iv(0, 5), iv(16, 20))

    def test_sparks(self):
        predicate = sparks(PB, factor=10.0)
        assert predicate.holds(iv(0, 1), iv(2, 20))
        assert not predicate.holds(iv(0, 1), iv(2, 8))  # not 10x longer
        assert not predicate.holds(iv(0, 1), iv(0.5, 20))  # does not come after


class TestScoredSemantics:
    def test_meets_tolerance(self):
        predicate = meets(P1)
        assert predicate.score(iv(0, 10), iv(10, 20)) == 1.0
        assert predicate.score(iv(0, 10), iv(13, 20)) == 1.0  # within lambda=4
        assert predicate.score(iv(0, 10), iv(22, 30)) == pytest.approx((4 + 16 - 12) / 16)
        assert predicate.score(iv(0, 10), iv(60, 70)) == 0.0

    def test_before_single_inequality(self):
        predicate = before(P1)
        assert predicate.score(iv(0, 10), iv(30, 40)) == 1.0
        assert predicate.score(iv(0, 10), iv(15, 40)) == pytest.approx(0.5)
        assert predicate.score(iv(0, 10), iv(5, 40)) == 0.0

    def test_starts_combines_with_min(self):
        predicate = starts(P1)
        perfect = predicate.score(iv(0, 10), iv(0, 40))
        assert perfect == 1.0
        shifted = predicate.score(iv(8, 10), iv(0, 40))
        assert 0.0 < shifted < 1.0
        # The score is the min of the two comparator scores.
        assert shifted == pytest.approx((4 + 16 - 8) / 16)

    def test_score_in_unit_interval(self):
        for factory in ALLEN_PREDICATES.values():
            predicate = factory(P1)
            for x, y in [(iv(0, 5), iv(2, 9)), (iv(10, 30), iv(0, 4)), (iv(1, 1), iv(1, 1))]:
                assert 0.0 <= predicate.score(x, y) <= 1.0

    def test_boolean_params_make_score_match_holds(self):
        for factory in ALLEN_PREDICATES.values():
            predicate = factory(PB)
            pairs = [
                (iv(0, 5), iv(5, 10)),
                (iv(0, 5), iv(6, 10)),
                (iv(0, 5), iv(0, 10)),
                (iv(0, 10), iv(2, 8)),
                (iv(3, 7), iv(3, 7)),
            ]
            for x, y in pairs:
                assert (predicate.score(x, y) == 1.0) == predicate.holds(x, y)

    def test_just_before_overrides(self):
        predicate = just_before(P1, avg_length=20.0)
        # A gap of exactly avg scores 1 on the equality part; anything up to avg does.
        assert predicate.score(iv(0, 10), iv(30, 40)) == 1.0
        assert predicate.score(iv(0, 10), iv(11, 40)) == 1.0
        # y must still start strictly after x ends (Boolean greater override).
        assert predicate.score(iv(0, 10), iv(9, 40)) == 0.0

    def test_sparks_scored(self):
        predicate = sparks(P1, factor=10.0)
        # y starts well after x ends and is more than 10x longer: both conjuncts saturate.
        assert predicate.score(iv(0, 1), iv(12, 120)) == 1.0
        # The score is the min over conjuncts: here the gap conjunct dominates.
        assert predicate.score(iv(0, 1), iv(5, 30)) == pytest.approx(0.4)
        assert predicate.score(iv(0, 2), iv(5, 15)) < 1.0


class TestPredicateUtilities:
    def test_rename(self):
        predicate = meets(P1).rename("a", "b")
        variables = predicate.variables()
        assert variables == {"a", "b"}
        # Renamed predicates cannot be evaluated with the x/y convenience API but the
        # comparisons reference the new names.
        comparison = predicate.comparisons[0]
        assert {ev.var for ev in comparison.left.endpoint_vars()} == {"a"}

    def test_with_params(self):
        predicate = meets(P1).with_params(PB)
        assert predicate.params == PB
        assert predicate.score(iv(0, 10), iv(12, 20)) == 0.0

    def test_predicate_by_name(self):
        assert predicate_by_name("before", P1).name == "before"
        assert predicate_by_name("justBefore", P1, avg_length=5.0).name == "justBefore"
        assert predicate_by_name("sparks", P1).name == "sparks"
        with pytest.raises(ValueError):
            predicate_by_name("justBefore", P1)
        with pytest.raises(KeyError):
            predicate_by_name("unknown", P1)

    def test_score_range_contains_samples(self):
        predicate = starts(P1)
        domains = {
            EndpointVar("x", "start"): (0.0, 20.0),
            EndpointVar("x", "end"): (20.0, 40.0),
            EndpointVar("y", "start"): (0.0, 20.0),
            EndpointVar("y", "end"): (40.0, 60.0),
        }
        lo, hi = predicate.score_range(domains)
        for xs in (0.0, 10.0, 20.0):
            for xe in (20.0, 30.0, 40.0):
                for ys in (0.0, 10.0, 20.0):
                    for ye in (40.0, 50.0, 60.0):
                        score = predicate.score(iv(xs, xe), iv(ys, ye))
                        assert lo - 1e-12 <= score <= hi + 1e-12

    def test_compile_matches_score(self):
        intervals = [iv(0, 5), iv(3, 9), iv(9, 12), iv(20, 40), iv(7, 7)]
        for name, factory in ALLEN_PREDICATES.items():
            predicate = factory(P1)
            fast = predicate.compile()
            for x in intervals:
                for y in intervals:
                    assert fast(x, y) == pytest.approx(predicate.score(x, y)), name

    def test_compile_extended_predicates(self):
        for predicate in (just_before(P1, 10.0), shift_meets(P1, 10.0), sparks(P1)):
            fast = predicate.compile()
            x, y = iv(0, 4), iv(12, 60)
            assert fast(x, y) == pytest.approx(predicate.score(x, y))

    def test_compile_rejects_foreign_variables(self):
        predicate = meets(P1).rename("a", "b")
        with pytest.raises(ValueError):
            predicate.compile()  # default variable names no longer match
        fast = predicate.compile("a", "b")
        assert fast(iv(0, 10), iv(10, 20)) == 1.0
