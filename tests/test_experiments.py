"""Tests for the experiment harness and (smoke-level) the figure drivers."""

import pytest

from repro.datagen import NetworkTraceConfig
from repro.experiments import (
    ResultTable,
    TKIJRunConfig,
    build_query,
    figure7_score_distribution,
    figure12_network_distribution,
    network_collections,
    run_tkij,
    statistics_collection_times,
)
from repro.experiments.harness import summarize


class TestResultTable:
    def test_add_row_and_column(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(a=1, b=2.5)
        table.add_row(a=3)
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.5, None]

    def test_to_text_contains_all_cells(self):
        table = ResultTable("My title", ["name", "value"])
        table.add_row(name="alpha", value=0.123456)
        text = table.to_text()
        assert "My title" in text
        assert "alpha" in text
        assert "0.1235" in text

    def test_to_text_empty(self):
        table = ResultTable("empty", ["x"])
        assert "empty" in table.to_text()

    def test_to_csv_raw_values_and_blanks(self):
        table = ResultTable("t", ["name", "value"])
        table.add_row(name="alpha", value=0.123456789)
        table.add_row(name="beta")
        lines = table.to_csv().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "alpha,0.123456789"  # unrounded, unlike to_text
        assert lines[2] == "beta,"

    def test_to_markdown_shape(self):
        table = ResultTable("My table", ["a", "b"])
        table.add_row(a=1, b=2.5)
        text = table.to_markdown()
        lines = text.splitlines()
        assert lines[0] == "### My table"
        assert lines[2] == "| a | b |"
        assert set(lines[3]) <= {"|", "-", " "}
        assert "| 1 | 2.5 |" in lines

    def test_render_unknown_format(self):
        table = ResultTable("t", ["a"])
        with pytest.raises(ValueError):
            table.render("yaml")

    def test_save_relative_path_lands_in_results_dir(self, tmp_path):
        table = ResultTable("t", ["a"])
        table.add_row(a=1)
        written = table.save("sub/table.md", results_dir=tmp_path)
        assert written == tmp_path / "sub" / "table.md"
        assert written.read_text().startswith("### t")

    def test_save_absolute_path_honoured(self, tmp_path):
        table = ResultTable("t", ["a"])
        table.add_row(a=1)
        target = tmp_path / "out.csv"
        written = table.save(target)
        assert written == target
        assert written.read_text().splitlines()[0] == "a"


class TestRunConfig:
    def test_make_runner_applies_settings(self):
        config = TKIJRunConfig(num_granules=7, strategy="two-phase", assigner="lpt", num_reducers=3)
        runner = config.make_runner()
        assert runner.num_granules == 7
        assert runner.strategy == "two-phase"
        assert runner.assigner == "lpt"
        assert runner.cluster.num_reducers == 3

    def test_run_tkij_and_summarize(self, tiny_collections):
        query = build_query("Qb,b", tiny_collections, "P1", k=5)
        result = run_tkij(query, TKIJRunConfig(num_granules=3, num_reducers=2))
        assert len(result.results) == 5
        table = summarize({"run": result}, ["seconds_total", "min_kth_score"])
        assert table.column("run") == ["run"]
        assert table.column("seconds_total")[0] > 0


class TestFigureDrivers:
    def test_figure7_small(self):
        table = figure7_score_distribution(size=60, ranks=(1, 10))
        assert len(table.rows) == 4
        predicates = table.column("predicate")
        assert "s-before" in predicates
        # before has by far the most perfect-scoring pairs (paper Figure 7).
        perfect = dict(zip(predicates, table.column("perfect_scores")))
        assert perfect["s-before"] >= perfect["s-starts"]

    def test_figure12_distribution(self):
        table = figure12_network_distribution(
            NetworkTraceConfig(num_sessions=300), seed=3, num_bins=5
        )
        percentages = [row for row in table.column("start_pct_tuples") if row is not None]
        assert sum(percentages) == pytest.approx(100.0, abs=1.0)

    def test_network_collections_copies(self):
        copies = network_collections(NetworkTraceConfig(num_sessions=120), seed=2, copies=3)
        assert len(copies) == 3
        assert len(copies[0]) == len(copies[1]) == len(copies[2])
        assert copies[0].name != copies[1].name

    def test_statistics_collection_times(self):
        table = statistics_collection_times(sizes=(200, 400), num_granules=5)
        assert table.column("size") == [200, 400]
        assert all(seconds >= 0 for seconds in table.column("seconds"))
