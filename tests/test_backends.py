"""Parity matrix for the execution backends.

The correctness contract of the backend layer (DESIGN.md §3): serial, thread
and process backends must return byte-identical job outputs, shuffle counters
and TKIJ end-to-end results — only timings may differ.  The serial backend is
the reference; every test here compares the others against it.
"""

from __future__ import annotations

import pytest

from repro.core import TKIJ
from repro.datagen.network import NetworkTraceConfig, generate_network_collection
from repro.mapreduce import (
    BACKENDS,
    ClusterConfig,
    FirstElementPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    ProcessPoolBackend,
    Reducer,
    SerialBackend,
    ThreadPoolBackend,
    create_backend,
)
from repro.temporal import IntervalCollection
from repro.experiments import build_query

BACKEND_NAMES = ("serial", "thread", "process")
PARALLEL_BACKENDS = ("thread", "process")


class TokenCountMapper(Mapper):
    def map(self, key, value):
        for word in value.split():
            self.counters.increment("words_seen")
            yield word, 1


class SumReducer(Reducer):
    def reduce(self, key, values):
        yield key, sum(values)


def wordcount_job(num_reducers: int = 4) -> MapReduceJob:
    return MapReduceJob(
        name="wordcount",
        mapper_factory=TokenCountMapper,
        reducer_factory=SumReducer,
        num_reducers=num_reducers,
    )


def wordcount_input(num_docs: int = 40):
    corpus = ["alpha beta gamma", "beta beta delta", "gamma alpha", "epsilon"]
    return [(i, corpus[i % len(corpus)]) for i in range(num_docs)]


def run_wordcount(backend_name: str):
    cluster = ClusterConfig(
        num_reducers=4, num_mappers=3, backend=backend_name, max_workers=2
    )
    with MapReduceEngine(cluster) as engine:
        return engine.run(wordcount_job(), wordcount_input())


class TestBackendRegistry:
    def test_known_backends(self):
        assert set(BACKENDS) == set(BACKEND_NAMES)
        assert isinstance(create_backend("serial"), SerialBackend)
        assert isinstance(create_backend("thread", 2), ThreadPoolBackend)
        assert isinstance(create_backend("process", 2), ProcessPoolBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("spark")
        with pytest.raises(ValueError):
            ClusterConfig(backend="spark")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(max_workers=0)
        with pytest.raises(ValueError):
            create_backend("thread", max_workers=-1)

    def test_pickling_contract(self):
        """Only the process backend crosses a process boundary; the engine's
        zero-copy fast path keys off this flag."""
        assert not SerialBackend().requires_pickling
        assert not ThreadPoolBackend().requires_pickling
        assert ProcessPoolBackend().requires_pickling


class TestZeroCopyFastPath:
    def test_serial_map_splits_are_not_copied(self):
        """On non-pickling backends map tasks receive the engine's own splits."""
        seen_splits = []

        class SpyBackend(SerialBackend):
            def run_tasks(self, tasks):
                seen_splits.extend(
                    task.split for task in tasks if hasattr(task, "split")
                )
                return super().run_tasks(tasks)

        engine = MapReduceEngine(ClusterConfig(num_mappers=2), backend=SpyBackend())
        engine.run(wordcount_job(), wordcount_input(8))
        assert seen_splits and all(isinstance(split, list) for split in seen_splits)

    def test_process_map_splits_are_frozen(self):
        """A pickling backend still gets the compact tuple copies."""

        class FrozenSpy(SerialBackend):
            requires_pickling = True

            def run_tasks(self, tasks):
                for task in tasks:
                    if hasattr(task, "split"):
                        assert isinstance(task.split, tuple)
                    else:
                        assert type(task.partition) is dict
                return super().run_tasks(tasks)

        engine = MapReduceEngine(ClusterConfig(num_mappers=2), backend=FrozenSpy())
        engine.run(wordcount_job(), wordcount_input(8))


class TestFirstElementPartitioner:
    def test_integer_first_element_routes_directly(self):
        partitioner = FirstElementPartitioner()
        assert partitioner.partition((3, "x", (0, 1)), 8) == 3
        assert partitioner.partition((11, "y"), 8) == 3

    def test_non_integer_first_element_falls_back_to_hash(self):
        partitioner = FirstElementPartitioner()
        index = partitioner.partition(("granule", 4), 8)
        assert 0 <= index < 8
        assert partitioner.partition(("granule", 99), 8) == index

    def test_bool_first_element_uses_hash_not_modulo(self):
        partitioner = FirstElementPartitioner()
        assert 0 <= partitioner.partition((True, "x"), 8) < 8


class TestJobParity:
    @pytest.mark.parametrize("backend_name", PARALLEL_BACKENDS)
    def test_wordcount_outputs_and_counters_match_serial(self, backend_name):
        reference = run_wordcount("serial")
        candidate = run_wordcount(backend_name)
        assert candidate.outputs == reference.outputs
        assert candidate.reducer_outputs == reference.reducer_outputs
        assert candidate.metrics.shuffle_records == reference.metrics.shuffle_records
        assert candidate.metrics.shuffle_size == reference.metrics.shuffle_size
        assert candidate.counters.as_dict() == reference.counters.as_dict()

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_task_metrics_structure(self, backend_name):
        result = run_wordcount(backend_name)
        assert [t.task_id for t in result.metrics.map_tasks] == [0, 1, 2]
        assert [t.task_id for t in result.metrics.reduce_tasks] == [0, 1, 2, 3]
        assert all(t.elapsed_seconds >= 0 for t in result.metrics.map_tasks)

    @pytest.mark.parametrize("backend_name", PARALLEL_BACKENDS)
    def test_parallel_backend_is_deterministic_across_runs(self, backend_name):
        first = run_wordcount(backend_name)
        second = run_wordcount(backend_name)
        assert first.outputs == second.outputs
        assert first.counters.as_dict() == second.counters.as_dict()

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_empty_input(self, backend_name):
        cluster = ClusterConfig(backend=backend_name, max_workers=2)
        with MapReduceEngine(cluster) as engine:
            result = engine.run(wordcount_job(), [])
        assert result.outputs == []


def _tkij_report(query, backend_name: str, num_granules: int = 8):
    cluster = ClusterConfig(
        num_reducers=6, num_mappers=3, backend=backend_name, max_workers=2
    )
    with TKIJ(num_granules=num_granules, cluster=cluster) as tkij:
        return tkij.execute(query)


def _assert_tkij_parity(query):
    reference = _tkij_report(query, "serial")
    for backend_name in PARALLEL_BACKENDS:
        report = _tkij_report(query, backend_name)
        assert [(r.uids, r.score) for r in report.results] == [
            (r.uids, r.score) for r in reference.results
        ], backend_name
        assert (
            report.join_metrics.shuffle_records
            == reference.join_metrics.shuffle_records
        ), backend_name
        assert (
            report.join_metrics.shuffle_size == reference.join_metrics.shuffle_size
        ), backend_name
        assert (
            report.join_metrics.counters.as_dict()
            == reference.join_metrics.counters.as_dict()
        ), backend_name
        assert report.per_reducer_kth_score == reference.per_reducer_kth_score, backend_name


class TestTKIJParity:
    def test_synthetic_workload(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, "P1", k=10)
        _assert_tkij_parity(query)

    def test_synthetic_sequence_workload(self, tiny_collections):
        query = build_query("Qb,b", tiny_collections, "P1", k=10)
        _assert_tkij_parity(query)

    def test_network_workload(self):
        config = NetworkTraceConfig(num_clients=20, num_servers=5, num_sessions=120)
        base = generate_network_collection(config, seed=13)
        collections = [
            IntervalCollection(f"{base.name}-{i + 1}", list(base.intervals))
            for i in range(3)
        ]
        query = build_query("Qo,o", collections, "P3", k=10)
        _assert_tkij_parity(query)


class TestTransferParity:
    """The transfer × backend × budget matrix (DESIGN.md §10).

    Every combination of transfer strategy, execution backend and memory
    budget must reproduce the plain serial in-memory run byte for byte —
    outputs, counters and the shuffle-byte accounting alike.
    """

    TRANSFER_NAMES = ("inline", "pickle", "shm")

    @staticmethod
    def _run(backend_name, transfer=None, memory_budget_bytes=None):
        cluster = ClusterConfig(
            num_reducers=4,
            num_mappers=3,
            backend=backend_name,
            max_workers=2,
            transfer=transfer,
            memory_budget_bytes=memory_budget_bytes,
        )
        with MapReduceEngine(cluster) as engine:
            return engine.run(wordcount_job(), wordcount_input())

    def test_unknown_transfer_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(transfer="carrier-pigeon")
        with pytest.raises(ValueError):
            ClusterConfig(memory_budget_bytes=0)

    def test_engine_resolves_backend_default(self):
        for backend_name, expected in (
            ("serial", "inline"),
            ("thread", "inline"),
            ("process", "pickle"),
        ):
            cluster = ClusterConfig(backend=backend_name, max_workers=2)
            with MapReduceEngine(cluster) as engine:
                assert engine.transfer.name == expected, backend_name

    @pytest.mark.parametrize("budget", (None, 1))
    @pytest.mark.parametrize("transfer", TRANSFER_NAMES)
    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    def test_wordcount_matrix(self, backend_name, transfer, budget):
        reference = self._run("serial")
        candidate = self._run(backend_name, transfer, budget)
        label = f"{backend_name}/{transfer}/budget={budget}"
        assert candidate.outputs == reference.outputs, label
        assert candidate.counters.as_dict() == reference.counters.as_dict(), label
        assert candidate.metrics.shuffle_records == reference.metrics.shuffle_records
        assert candidate.metrics.shuffle_bytes == reference.metrics.shuffle_bytes
        if budget is None:
            assert candidate.metrics.spill_runs == 0
            assert candidate.metrics.bytes_spilled == 0
        else:
            assert candidate.metrics.spill_runs > 0, label
            assert candidate.metrics.bytes_spilled > 0, label
        # Wordcount shuffles plain ints: shm has nothing columnar to share.
        assert candidate.metrics.shm_segments == 0

    def test_unbounded_runs_report_no_shuffle_regression(self):
        result = self._run("serial")
        assert result.metrics.shuffle_bytes > 0


def _tkij_transfer_report(query, backend_name, transfer=None, memory_budget_bytes=None):
    from repro.core import LocalJoinConfig

    cluster = ClusterConfig(
        num_reducers=4,
        num_mappers=3,
        backend=backend_name,
        max_workers=2,
        transfer=transfer,
        memory_budget_bytes=memory_budget_bytes,
    )
    with TKIJ(
        num_granules=6,
        cluster=cluster,
        join_config=LocalJoinConfig(kernel="vector"),
    ) as tkij:
        return tkij.execute(query)


class TestTKIJTransferParity:
    """End-to-end TKIJ with the vector kernel across shm/spill arms."""

    ARMS = (
        ("serial", "shm", None),
        ("process", "shm", None),
        ("serial", None, 2048),
        ("process", "pickle", 2048),
        ("process", "shm", 2048),
    )

    def test_all_arms_match_the_inline_reference(self, tiny_collections):
        import glob

        query = build_query("Qs,m", tiny_collections, "P1", k=10)
        reference = _tkij_transfer_report(query, "serial")
        for backend_name, transfer, budget in self.ARMS:
            report = _tkij_transfer_report(query, backend_name, transfer, budget)
            label = f"{backend_name}/{transfer}/budget={budget}"
            assert [(r.uids, r.score) for r in report.results] == [
                (r.uids, r.score) for r in reference.results
            ], label
            assert (
                report.join_metrics.shuffle_bytes
                == reference.join_metrics.shuffle_bytes
            ), label
            assert (
                report.join_metrics.counters.as_dict()
                == reference.join_metrics.counters.as_dict()
            ), label
            if transfer == "shm":
                assert report.join_metrics.shm_segments > 0, label
            if budget is not None:
                assert report.join_metrics.spill_runs > 0, label
                assert report.join_metrics.bytes_spilled > 0, label
        assert glob.glob("/dev/shm/tkij-shm-*") == []
        assert glob.glob("/tmp/tkij-spill-*") == []
