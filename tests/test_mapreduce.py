"""Tests for the simulated Map-Reduce substrate."""

import pytest

from repro.mapreduce import (
    ClusterConfig,
    Counters,
    HashPartitioner,
    MapReduceEngine,
    MapReduceJob,
    Mapper,
    Reducer,
    RoutingPartitioner,
)


class WordCountMapper(Mapper):
    def map(self, key, value):
        for word in value.split():
            self.counters.increment("words_seen")
            yield word, 1


class SumReducer(Reducer):
    def reduce(self, key, values):
        yield key, sum(values)


class TrailingReducer(Reducer):
    """Reducer that also emits a summary record from cleanup()."""

    def __init__(self):
        self._count = 0

    def reduce(self, key, values):
        self._count += len(values)
        return iter(())

    def cleanup(self):
        yield "total", self._count


def wordcount_job(num_reducers=3):
    return MapReduceJob(
        name="wordcount",
        mapper_factory=WordCountMapper,
        reducer_factory=SumReducer,
        num_reducers=num_reducers,
    )


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment("a")
        counters.increment("a", 4)
        assert counters.get("a") == 5
        assert counters.get("missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.increment("x", 2)
        b.increment("x", 3)
        b.increment("y")
        a.merge(b)
        assert a.get("x") == 5
        assert a.get("y") == 1

    def test_as_dict(self):
        counters = Counters()
        counters.increment("k", 7)
        assert counters.as_dict() == {"k": 7}


class TestPartitioners:
    def test_hash_partitioner_is_stable_and_in_range(self):
        partitioner = HashPartitioner()
        for key in ["a", ("x", 3), 42, 3.5, ("deep", ("nested", 1))]:
            first = partitioner.partition(key, 7)
            assert 0 <= first < 7
            assert partitioner.partition(key, 7) == first

    def test_routing_partitioner_uses_table(self):
        partitioner = RoutingPartitioner({"a": 5, "b": 2})
        assert partitioner.partition("a", 8) == 5
        assert partitioner.partition("b", 8) == 2
        assert 0 <= partitioner.partition("unknown", 8) < 8

    def test_routing_partitioner_wraps_modulo(self):
        partitioner = RoutingPartitioner({"a": 9})
        assert partitioner.partition("a", 4) == 1


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_reducers=0)
        with pytest.raises(ValueError):
            ClusterConfig(num_mappers=0)


class TestEngine:
    def test_wordcount(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=3, num_mappers=2))
        documents = [(i, text) for i, text in enumerate(["a b a", "b c", "a c c c"])]
        result = engine.run(wordcount_job(), documents)
        counts = dict(result.outputs)
        assert counts == {"a": 3, "b": 2, "c": 4}

    def test_small_input_skips_empty_splits(self):
        # Fewer records than mappers: no empty map task is dispatched (small
        # streaming batches would otherwise pay task overhead for no work).
        engine = MapReduceEngine(ClusterConfig(num_mappers=8))
        documents = [(i, "w") for i in range(3)]
        result = engine.run(wordcount_job(), documents)
        assert len(result.metrics.map_tasks) == 3
        assert all(task.input_records == 1 for task in result.metrics.map_tasks)
        assert dict(result.outputs) == {"w": 3}

    def test_empty_input_dispatches_no_map_tasks(self):
        engine = MapReduceEngine(ClusterConfig(num_mappers=4))
        result = engine.run(wordcount_job(), [])
        assert result.metrics.map_tasks == []
        assert result.outputs == []

    def test_counters_aggregated_across_tasks(self):
        engine = MapReduceEngine(ClusterConfig(num_mappers=3))
        documents = [(i, "w w w") for i in range(6)]
        result = engine.run(wordcount_job(), documents)
        assert result.counters.get("words_seen") == 18

    def test_metrics_structure(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=4, num_mappers=2))
        documents = [(i, "alpha beta") for i in range(10)]
        result = engine.run(wordcount_job(num_reducers=4), documents)
        metrics = result.metrics
        assert len(metrics.map_tasks) == 2
        assert len(metrics.reduce_tasks) == 4
        assert metrics.shuffle_records == 20
        assert metrics.elapsed_seconds > 0
        assert metrics.max_reduce_seconds >= 0
        summary = metrics.describe()
        assert summary["shuffle_records"] == 20

    def test_reducer_outputs_grouped_per_task(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=2))
        documents = [(i, "x y z") for i in range(4)]
        result = engine.run(wordcount_job(num_reducers=2), documents)
        assert len(result.reducer_outputs) == 2
        flattened = [pair for chunk in result.reducer_outputs for pair in chunk]
        assert sorted(flattened) == sorted(result.outputs)

    def test_cleanup_emits_after_all_keys(self):
        job = MapReduceJob(
            name="cleanup",
            mapper_factory=WordCountMapper,
            reducer_factory=TrailingReducer,
            num_reducers=1,
        )
        engine = MapReduceEngine()
        result = engine.run(job, [(0, "a b c a")])
        assert result.outputs == [("total", 4)]

    def test_record_size_accounted(self):
        job = MapReduceJob(
            name="sized",
            mapper_factory=WordCountMapper,
            reducer_factory=SumReducer,
            num_reducers=1,
            record_size=lambda key, value: 10,
        )
        engine = MapReduceEngine()
        result = engine.run(job, [(0, "a b")])
        assert result.metrics.shuffle_size == 20

    def test_empty_input(self):
        engine = MapReduceEngine()
        result = engine.run(wordcount_job(), [])
        assert result.outputs == []

    def test_history_is_kept(self):
        engine = MapReduceEngine()
        engine.run(wordcount_job(), [(0, "a")])
        engine.run(wordcount_job(), [(0, "b")])
        assert len(engine.history) == 2

    def test_imbalance_metric(self):
        engine = MapReduceEngine(ClusterConfig(num_reducers=2))
        result = engine.run(wordcount_job(num_reducers=2), [(0, "a b c d e f")])
        assert result.metrics.imbalance >= 1.0
