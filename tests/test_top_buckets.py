"""Tests for getTopBuckets (Algorithm 1) and the TopBuckets strategies (Algorithm 2)."""

import pytest

from repro.core import CombinationSpace, TopBucketsSelector, collect_statistics, get_top_buckets
from repro.core.bounds import BucketCombination
from repro.core.top_buckets import validate_selection
from repro.experiments import build_query
from repro.temporal import PredicateParams

P1 = PredicateParams.of(4, 16, 0, 10)


def combo(name, nb_res, lb, ub):
    return BucketCombination(("x",), ((name, name),), nb_res, lb, ub)


class TestGetTopBuckets:
    def test_keeps_everything_when_k_not_covered(self):
        combos = [combo(0, 2, 0.1, 0.5), combo(1, 3, 0.0, 0.4)]
        selected = get_top_buckets(combos, k=100)
        assert len(selected) == 2

    def test_prunes_dominated_combinations(self):
        combos = [
            combo(0, 10, 0.9, 1.0),   # provides >= k results with LB 0.9
            combo(1, 5, 0.2, 0.8),    # UB 0.8 < 0.9 -> prunable
            combo(2, 5, 0.0, 0.95),   # UB 0.95 > 0.9 -> must stay
        ]
        selected = get_top_buckets(combos, k=5)
        keys = {c.key() for c in selected}
        assert combo(0, 10, 0.9, 1.0).key() in keys
        assert combo(2, 5, 0.0, 0.95).key() in keys
        assert combo(1, 5, 0.2, 0.8).key() not in keys

    def test_kth_lower_bound_accumulates_results(self):
        # The k-th result lower bound comes from enough combinations to cover k.
        combos = [
            combo(0, 1, 0.9, 1.0),
            combo(1, 1, 0.7, 1.0),
            combo(2, 1, 0.5, 1.0),
            combo(3, 1, 0.0, 0.6),
        ]
        selected = get_top_buckets(combos, k=2)
        keys = {c.key() for c in selected}
        # kthResLB = 0.7 (after two combos); the last combo has UB 0.6 <= 0.7.
        assert combo(3, 1, 0.0, 0.6).key() not in keys
        assert len(selected) == 3

    def test_empty_and_zero_cardinality(self):
        assert get_top_buckets([], k=10) == []
        assert get_top_buckets([combo(0, 0, 0.0, 1.0)], k=10) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            get_top_buckets([combo(0, 1, 0.0, 1.0)], k=0)

    def test_selection_satisfies_definition2(self):
        combos = [
            combo(i, nb, lb, min(1.0, lb + spread))
            for i, (nb, lb, spread) in enumerate(
                [(5, 0.9, 0.1), (3, 0.7, 0.2), (10, 0.5, 0.3), (2, 0.2, 0.5), (8, 0.0, 0.4)]
            )
        ]
        for k in (1, 3, 10, 25):
            selected = get_top_buckets(combos, k=k)
            assert validate_selection(selected, combos, k)


class TestSelectorStrategies:
    @pytest.fixture()
    def query_and_stats(self, tiny_collections):
        query = build_query("Qs,m", tiny_collections, P1, k=5)
        collections = {c.name: c for c in tiny_collections}
        statistics = collect_statistics(collections, num_granules=4)
        return query, statistics

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            TopBucketsSelector(strategy="magic")

    @pytest.mark.parametrize("strategy", ["loose", "two-phase", "brute-force"])
    def test_selection_is_sufficient(self, query_and_stats, strategy):
        query, statistics = query_and_stats
        space = CombinationSpace(query, statistics)
        result = TopBucketsSelector(strategy=strategy).run(query, statistics, space)
        assert result.selected_count > 0
        assert result.selected_results >= min(query.k, result.total_results)
        assert 0.0 <= result.pruned_results_fraction < 1.0
        assert result.total_combinations == space.size()

    def test_loose_never_selects_fewer_than_two_phase(self, query_and_stats):
        """Tighter bounds can only prune more, never less."""
        query, statistics = query_and_stats
        loose = TopBucketsSelector(strategy="loose").run(query, statistics)
        two_phase = TopBucketsSelector(strategy="two-phase").run(query, statistics)
        assert two_phase.selected_count <= loose.selected_count

    def test_strategies_report_work_counters(self, query_and_stats):
        query, statistics = query_and_stats
        loose = TopBucketsSelector(strategy="loose").run(query, statistics)
        brute = TopBucketsSelector(strategy="brute-force").run(query, statistics)
        assert loose.pairs_bounded > 0
        assert loose.tight_bounds_computed == 0
        assert brute.tight_bounds_computed == brute.total_combinations
        summary = loose.describe()
        assert summary["selected_combinations"] == loose.selected_count
