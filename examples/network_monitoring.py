"""Network traffic monitoring: chains of connections that closely follow each other.

This reproduces the paper's network-traffic scenario (Section 4.3): connections are
built from a (simulated) firewall packet log, and the 3-way query ``QjB,jB`` looks
for sequences of three connections where each one starts shortly after the previous
one ended (the ``justBefore`` predicate), e.g. to investigate causality between
sessions on different servers.  ``QsM,sM`` (``shiftMeets``) finds sequences where a
typical-length delay separates the connections.

Run with:  python examples/network_monitoring.py
"""

from __future__ import annotations

from repro import ClusterConfig, TKIJ
from repro.datagen import NetworkTraceConfig, generate_network_collection
from repro.experiments import PARAMETERS, build_query
from repro.temporal import IntervalCollection


def main() -> None:
    # Simulate one day of firewall logs and group packets into connections.
    trace = NetworkTraceConfig(num_sessions=1_500, num_clients=80, num_servers=20)
    connections = generate_network_collection(trace, seed=42)
    print(f"Built {len(connections)} connections from the simulated packet log")
    summary = connections.describe()
    print(
        f"lengths: min={summary['length_min']:.0f}s "
        f"avg={summary['length_avg']:.0f}s max={summary['length_max']:.0f}s"
    )
    print()

    # The paper copies the connection list once per query vertex and runs 3-way queries.
    copies = [
        IntervalCollection(f"connections-{i + 1}", list(connections.intervals)) for i in range(3)
    ]

    tkij = TKIJ(num_granules=15, cluster=ClusterConfig(num_reducers=8))

    for query_name, description in (
        ("QjB,jB", "connections that closely follow each other"),
        ("QsM,sM", "connections separated by a typical delay"),
    ):
        query = build_query(query_name, copies, PARAMETERS["P3"], k=10)
        report = tkij.execute(query)
        print(f"{query_name}: top-{query.k} sequences of {description}")
        print("-" * 72)
        for rank, result in enumerate(report.results[:5], start=1):
            chain = [copies[i].get(uid) for i, uid in enumerate(result.uids)]
            text = "  ->  ".join(
                f"[{c.start:.0f},{c.end:.0f}] {c.payload['client']}->{c.payload['server']}"
                for c in chain
            )
            print(f"{rank:>2}. score={result.score:.3f}  {text}")
        print(
            f"   selected {report.top_buckets.selected_count} bucket combinations, "
            f"pruned {report.top_buckets.pruned_results_fraction:.0%} of candidates, "
            f"query time {report.total_seconds:.2f}s"
        )
        print()


if __name__ == "__main__":
    main()
