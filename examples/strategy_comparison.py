"""Compare TKIJ's TopBuckets strategies and workload-assignment policies.

This example mirrors the design-choice experiments of the paper (Figures 8 and 9)
at laptop scale: the same 3-way query is evaluated with the three TopBuckets
strategies (brute-force, two-phase, loose) and, separately, with the DTB and LPT
workload assigners, printing where the time goes in each case.

Run with:  python examples/strategy_comparison.py
"""

from __future__ import annotations

from repro.datagen import SyntheticConfig, generate_collections
from repro.experiments import PARAMETERS, TKIJRunConfig, build_query, run_tkij


def main() -> None:
    collections = list(
        generate_collections(3, SyntheticConfig(size=600), seed=3).values()
    )

    print("TopBuckets strategies on Qo,m (overlaps, meets), k=100")
    print("-" * 78)
    header = f"{'strategy':<12} {'topbuckets':>11} {'join':>8} {'total':>8} {'|Omega_k,S|':>12} {'pruned':>8}"
    print(header)
    for strategy in ("brute-force", "two-phase", "loose"):
        query = build_query("Qo,m", collections, PARAMETERS["P1"], k=100)
        report = run_tkij(query, TKIJRunConfig(num_granules=8, strategy=strategy))
        print(
            f"{strategy:<12} {report.phase_seconds['top_buckets']:>10.2f}s "
            f"{report.phase_seconds['join']:>7.2f}s {report.total_seconds:>7.2f}s "
            f"{report.top_buckets.selected_count:>12d} "
            f"{report.top_buckets.pruned_results_fraction:>7.0%}"
        )
    print()

    print("Workload assignment on Qs,s (starts, starts), k=100")
    print("-" * 78)
    header = f"{'assigner':<12} {'join':>8} {'max reducer':>12} {'imbalance':>10} {'min kth score':>14}"
    print(header)
    for assigner in ("dtb", "lpt", "round-robin"):
        query = build_query("Qs,s", collections, PARAMETERS["P2"], k=100)
        report = run_tkij(query, TKIJRunConfig(num_granules=10, assigner=assigner))
        print(
            f"{assigner:<12} {report.phase_seconds['join']:>7.2f}s "
            f"{report.join_metrics.max_reduce_seconds:>11.2f}s "
            f"{report.join_metrics.imbalance:>10.2f} {report.min_kth_score:>14.3f}"
        )


if __name__ == "__main__":
    main()
