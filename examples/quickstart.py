"""Quickstart: evaluate a Ranked Temporal Join query through the algorithm registry.

The example builds two small synthetic interval collections, asks for the top-10
(x, y) pairs where ``x`` *almost meets* ``y`` (the motivating example of the
paper's introduction), and evaluates the query through ``repro.plan``:

* the **registry** (`get_algorithm`) dispatches to TKIJ without touching its
  internals — the same call runs `naive`, `allmatrix` or `rccis`;
* ``mode="auto"`` lets the cost-based **AutoPlanner** pick granularity,
  TopBuckets strategy and workload assigner from collected statistics, and the
  report says why;
* the shared **ExecutionContext** caches the query-independent statistics phase,
  so the second query on the same dataset skips it entirely.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, ExecutionContext, PredicateParams, QueryBuilder, get_algorithm
from repro.datagen import SyntheticConfig, generate_uniform_collection


def main() -> None:
    # Two collections of intervals: e.g. traffic requests from two countries.
    config = SyntheticConfig(size=600, start_max=6_000.0)
    requests_a = generate_uniform_collection("country_A", config, seed=1)
    requests_b = generate_uniform_collection("country_B", config, seed=2)

    # Scored predicates: a tolerance of 4 time units counts as "meets", with the
    # score decreasing linearly over the next 16 units (parameter set P1).
    params = PredicateParams.of(
        lambda_equals=4, rho_equals=16, lambda_greater=0, rho_greater=10
    )

    query = (
        QueryBuilder(name="almost-meets", params=params)
        .add_collection("x", requests_a)
        .add_collection("y", requests_b)
        .add_predicate("x", "y", "meets")
        .top(10)
        .build()
    )

    # A simulated 8-reducer cluster plus the reusable statistics cache; every
    # registered algorithm runs inside this context.
    with ExecutionContext(cluster=ClusterConfig(num_reducers=8)) as context:
        tkij = get_algorithm("tkij")

        # First run: the cost-based planner chooses the configuration.
        report = tkij.run(query, context, mode="auto")

        # Second run on the same dataset: phase (a) comes from the cache.
        second = tkij.run(query, context, mode="auto")
        assert second.statistics_cached, "second query must reuse cached statistics"

        # The naive oracle, through the very same interface.  (Scores are
        # compared: ties at the k-th score may resolve to different tuples.)
        oracle = get_algorithm("naive").run(query, context)
        assert [round(r.score, 9) for r in report.results] == [
            round(r.score, 9) for r in oracle.results
        ], "TKIJ must return exactly the naive top-k scores"

    print(f"Top-{query.k} pairs where x almost meets y")
    print("-" * 46)
    for rank, result in enumerate(report.results, start=1):
        x = requests_a.get(result.uids[0])
        y = requests_b.get(result.uids[1])
        print(
            f"{rank:>2}. score={result.score:.3f}  "
            f"x=[{x.start:.0f}, {x.end:.0f}]  y=[{y.start:.0f}, {y.end:.0f}]"
        )

    print()
    print("Execution report")
    print("-" * 46)
    for phase, seconds in report.phase_seconds.items():
        print(f"{phase:>14}: {seconds * 1000:8.1f} ms")
    tkij_result = report.raw  # the full TKIJResult, phase by phase
    print(f"{'pruned':>14}: {tkij_result.top_buckets.pruned_results_fraction:8.1%} of candidate results")
    print(f"{'shuffled':>14}: {tkij_result.join_metrics.shuffle_records:8d} records")
    print(f"{'imbalance':>14}: {tkij_result.join_metrics.imbalance:8.2f} (max / avg reducer time)")

    print()
    print("Plan (chosen by the AutoPlanner from collected statistics)")
    print("-" * 46)
    print(report.explanation.summary())
    print()
    print(
        f"second query reused cached statistics: phase (a) took "
        f"{second.phase_seconds['statistics'] * 1000:.2f} ms "
        f"(first: {report.phase_seconds['statistics'] * 1000:.2f} ms)"
    )


if __name__ == "__main__":
    main()
