"""Quickstart: evaluate a Ranked Temporal Join query end to end with TKIJ.

The example builds two small synthetic interval collections, asks for the top-10
(x, y) pairs where ``x`` *almost meets* ``y`` (the motivating example of the
paper's introduction), and prints the results together with the execution report
TKIJ produces (pruning, shuffle volume, per-phase timings).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, PredicateParams, QueryBuilder, TKIJ
from repro.datagen import SyntheticConfig, generate_uniform_collection


def main() -> None:
    # Two collections of intervals: e.g. traffic requests from two countries.
    config = SyntheticConfig(size=2_000, start_max=20_000.0)
    requests_a = generate_uniform_collection("country_A", config, seed=1)
    requests_b = generate_uniform_collection("country_B", config, seed=2)

    # Scored predicates: a tolerance of 4 time units counts as "meets", with the
    # score decreasing linearly over the next 16 units (parameter set P1).
    params = PredicateParams.of(
        lambda_equals=4, rho_equals=16, lambda_greater=0, rho_greater=10
    )

    query = (
        QueryBuilder(name="almost-meets", params=params)
        .add_collection("x", requests_a)
        .add_collection("y", requests_b)
        .add_predicate("x", "y", "meets")
        .top(10)
        .build()
    )

    # TKIJ on a simulated 8-reducer cluster, with the paper's default configuration:
    # loose TopBuckets bounds and DTB workload assignment.
    tkij = TKIJ(
        num_granules=20,
        strategy="loose",
        assigner="dtb",
        cluster=ClusterConfig(num_reducers=8),
    )
    report = tkij.execute(query)

    # The same query on the process-pool backend: map splits and reduce
    # partitions run in worker processes, results are byte-identical.
    with TKIJ(
        num_granules=20,
        strategy="loose",
        assigner="dtb",
        cluster=ClusterConfig(num_reducers=8, backend="process", max_workers=4),
    ) as parallel_tkij:
        parallel_report = parallel_tkij.execute(query)
    assert [(r.uids, r.score) for r in parallel_report.results] == [
        (r.uids, r.score) for r in report.results
    ], "backends must agree"

    print(f"Top-{query.k} pairs where x almost meets y")
    print("-" * 46)
    for rank, result in enumerate(report.results, start=1):
        x = requests_a.get(result.uids[0])
        y = requests_b.get(result.uids[1])
        print(
            f"{rank:>2}. score={result.score:.3f}  "
            f"x=[{x.start:.0f}, {x.end:.0f}]  y=[{y.start:.0f}, {y.end:.0f}]"
        )

    print()
    print("Execution report")
    print("-" * 46)
    for phase, seconds in report.phase_seconds.items():
        print(f"{phase:>14}: {seconds * 1000:8.1f} ms")
    print(f"{'pruned':>14}: {report.top_buckets.pruned_results_fraction:8.1%} of candidate results")
    print(f"{'shuffled':>14}: {report.join_metrics.shuffle_records:8d} records")
    print(f"{'imbalance':>14}: {report.join_metrics.imbalance:8.2f} (max / avg reducer time)")
    print()
    print(
        f"process backend: identical top-{query.k} in "
        f"{parallel_report.total_seconds * 1000:.1f} ms "
        f"(serial: {report.total_seconds * 1000:.1f} ms)"
    )


if __name__ == "__main__":
    main()
