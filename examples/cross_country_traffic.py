"""Hybrid query: traffic causality between requests from *different countries*.

This is the motivating query of the paper's introduction: a system administrator
monitoring traffic between countries wants pairs of requests (x, y) where x ends
before y starts *and x and y originate from different countries*.  The temporal
part is scored (pairs where x ends just before y are preferred); the country
condition is an attribute constraint on the join edge — the "hybrid query"
extension the paper lists as future work.

Run with:  python examples/cross_country_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro import ClusterConfig, PredicateParams, QueryBuilder, TKIJ
from repro.temporal import AttributeDiffers, Interval, IntervalCollection


def simulate_requests(name: str, size: int, seed: int) -> IntervalCollection:
    """Traffic requests tagged with an origin country."""
    rng = np.random.default_rng(seed)
    countries = ["FR", "DE", "IT", "ES", "US"]
    starts = rng.uniform(0, 20_000, size)
    lengths = rng.uniform(1, 120, size)
    intervals = [
        Interval(
            uid,
            float(start),
            float(start + length),
            payload={"country": countries[rng.integers(0, len(countries))], "ip": f"10.0.{uid % 256}.{uid // 256}"},
        )
        for uid, (start, length) in enumerate(zip(starts, lengths))
    ]
    return IntervalCollection(name, intervals)


def main() -> None:
    datacenter_a = simulate_requests("datacenter-A", 1_500, seed=21)
    datacenter_b = simulate_requests("datacenter-B", 1_500, seed=22)

    # "x ends just before y starts": the gap is scored, with up to 2 time units
    # counting as an exact handover.
    params = PredicateParams.of(
        lambda_equals=2, rho_equals=20, lambda_greater=0, rho_greater=10
    )

    query = (
        QueryBuilder(name="cross-country-causality", params=params)
        .add_collection("x", datacenter_a)
        .add_collection("y", datacenter_b)
        .add_predicate("x", "y", "meets", attributes=[AttributeDiffers("country")])
        .top(10)
        .build()
    )

    tkij = TKIJ(num_granules=15, cluster=ClusterConfig(num_reducers=8))
    report = tkij.execute(query)

    print("Request pairs from different countries where x hands over to y")
    print("-" * 74)
    for rank, result in enumerate(report.results, start=1):
        x = datacenter_a.get(result.uids[0])
        y = datacenter_b.get(result.uids[1])
        print(
            f"{rank:>2}. score={result.score:.3f}  "
            f"{x.payload['country']} [{x.start:.0f},{x.end:.0f}]  ->  "
            f"{y.payload['country']} [{y.start:.0f},{y.end:.0f}]"
        )
    print()
    print(
        "Note: with attribute constraints TKIJ keeps every bucket combination "
        "(count-based pruning is unsound on hybrid queries); "
        f"{report.top_buckets.selected_count} combinations were processed in "
        f"{report.total_seconds:.2f}s."
    )


if __name__ == "__main__":
    main()
