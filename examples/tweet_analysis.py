"""Tweet analysis: hashtags that spark long-lasting discussions.

The paper's introduction motivates the ``sparks(x, y)`` predicate: find pairs of
hashtags where a short-lived topic ``x`` immediately precedes a topic ``y`` that
lasts at least ten times longer (the ``#JeSuisCharlie`` example).  This example
generates hashtag lifespans, builds the scored ``sparks`` query and prints the best
candidate "spark" pairs.  A second query uses ``meets`` to find topics that started
roughly when another ended.

Run with:  python examples/tweet_analysis.py
"""

from __future__ import annotations

from repro import ClusterConfig, PredicateParams, QueryBuilder, TKIJ
from repro.datagen import TweetConfig, generate_hashtag_collection
from repro.temporal import sparks


def main() -> None:
    config = TweetConfig(num_hashtags=1_200, long_lived_fraction=0.06)
    topics_week1 = generate_hashtag_collection("hashtags-week1", config, seed=5)
    topics_week2 = generate_hashtag_collection("hashtags-week2", config, seed=6)

    # Tolerate up to half an hour of slack on endpoint comparisons; scores decay
    # over the next three hours.
    params = PredicateParams.of(
        lambda_equals=0.5, rho_equals=3.0, lambda_greater=0.0, rho_greater=3.0
    )

    tkij = TKIJ(num_granules=15, cluster=ClusterConfig(num_reducers=6))

    spark_query = (
        QueryBuilder(name="sparks", params=params)
        .add_collection("x", topics_week1)
        .add_collection("y", topics_week2)
        .add_predicate("x", "y", sparks(params, factor=10.0))
        .top(8)
        .build()
    )
    report = tkij.execute(spark_query)
    print("Hashtags that sparked a much longer discussion (sparks(x, y))")
    print("-" * 70)
    for rank, result in enumerate(report.results, start=1):
        x = topics_week1.get(result.uids[0])
        y = topics_week2.get(result.uids[1])
        print(
            f"{rank:>2}. score={result.score:.3f}  {x.payload['hashtag']} "
            f"({x.length:.1f}h) precedes {y.payload['hashtag']} ({y.length:.1f}h)"
        )
    print()

    meets_query = (
        QueryBuilder(name="topic-handoff", params=params)
        .add_collection("x", topics_week1)
        .add_collection("y", topics_week2)
        .add_predicate("x", "y", "meets")
        .top(8)
        .build()
    )
    report = tkij.execute(meets_query)
    print("Topics that started as another ended (meets(x, y))")
    print("-" * 70)
    for rank, result in enumerate(report.results, start=1):
        x = topics_week1.get(result.uids[0])
        y = topics_week2.get(result.uids[1])
        print(
            f"{rank:>2}. score={result.score:.3f}  {x.payload['hashtag']} ends at "
            f"{x.end:.1f}h, {y.payload['hashtag']} starts at {y.start:.1f}h"
        )


if __name__ == "__main__":
    main()
